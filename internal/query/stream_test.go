package query

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tstore"
)

// newStreamServer builds a hub-backed streaming server over an archive —
// a Streamer is both Executor and Subscriber, so NewServer serves the
// whole two-mode surface from it, the way maritimed serves its engine.
func newStreamServer(t *testing.T, st *tstore.Store) (*httptest.Server, *Hub) {
	t.Helper()
	hub := NewHub(HubConfig{})
	eng := NewEngine(NewStoreSource("archive", st))
	ts := httptest.NewServer(NewServer(NewStreamer(hub, eng)))
	t.Cleanup(ts.Close)
	return ts, hub
}

func TestStreamOverHTTP(t *testing.T) {
	ts, hub := newStreamServer(t, tstore.New())
	c := NewClient(ts.URL)
	box := Box{MinLat: 41, MinLon: 4, MaxLat: 45, MaxLon: 9}
	sub, err := c.Subscribe(Request{Kind: KindSpaceTime, Box: &box}, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	states := testStates(3, 15)
	for _, s := range states {
		hub.PublishState(s)
	}
	inBox := 0
	for _, s := range states {
		if box.Rect().Contains(s.Pos) {
			inBox++
		}
	}
	got := collect(t, sub, inBox)
	for i, u := range got {
		if u.Kind != UpdateState {
			t.Fatalf("update %d is %s (heartbeats must be absorbed by the client)", i, u.Kind)
		}
		if i > 0 && u.Seq <= got[i-1].Seq {
			t.Fatalf("remote updates out of sequence: %d after %d", u.Seq, got[i-1].Seq)
		}
	}
	sub.Cancel()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-sub.Updates():
			if !ok {
				if err := sub.Err(); err != nil {
					t.Fatalf("clean cancel left err %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("remote subscription did not close after Cancel")
		}
	}
}

// TestStreamResumeAfterDisconnect pins the remote-peer resume path: when
// the connection is torn down mid-stream, the client reconnects with its
// last sequence and the server replays what the ring retained — updates
// arrive exactly once, in order.
func TestStreamResumeAfterDisconnect(t *testing.T) {
	ts, hub := newStreamServer(t, tstore.New())
	c := NewClient(ts.URL)
	c.Retry = RetryPolicy{Max: 5, BaseDelay: 10 * time.Millisecond}
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	sub, err := c.Subscribe(Request{Kind: KindLivePicture, Box: &world},
		SubOptions{Heartbeat: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	states := testStates(1, 24)
	for _, s := range states[:10] {
		hub.PublishState(s)
	}
	first := collect(t, sub, 10)

	ts.CloseClientConnections() // tear the stream down under the client
	for _, s := range states[10:] {
		hub.PublishState(s)
	}
	rest := collect(t, sub, 14)
	all := append(first, rest...)
	for i, u := range all {
		if want := uint64(i + 1); u.Seq != want {
			t.Fatalf("update %d has seq %d, want %d — resume duplicated or lost updates", i, u.Seq, want)
		}
		if !u.State.At.Equal(states[i].At) {
			t.Fatalf("update %d carries state at %v, want %v", i, u.State.At, states[i].At)
		}
	}
}

func TestStreamErrorsAndUnsupported(t *testing.T) {
	// A server over a plain Engine (no Subscriber): /v1/stream is 501.
	st := fill(tstore.New(), testStates(2, 5))
	plain := httptest.NewServer(NewServer(NewEngine(NewStoreSource("archive", st))))
	defer plain.Close()
	c := NewClient(plain.URL)
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	if _, err := c.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{}); err == nil ||
		!strings.Contains(err.Error(), "subscriptions") {
		t.Fatalf("want unsupported-subscriptions error, got %v", err)
	}

	// A streaming server rejects invalid and unstreamable requests with 400.
	ts, _ := newStreamServer(t, st)
	sc := NewClient(ts.URL)
	if _, err := sc.Subscribe(Request{Kind: KindSpaceTime}, SubOptions{}); err == nil ||
		!strings.Contains(err.Error(), "requires box") {
		t.Fatalf("want validation error over the wire, got %v", err)
	}
	if _, err := sc.Subscribe(Request{Kind: KindStats}, SubOptions{}); err == nil ||
		!strings.Contains(err.Error(), "not streamable") {
		t.Fatalf("want not-streamable error over the wire, got %v", err)
	}
	// GET is not a stream.
	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/stream: %d, want 405", resp.StatusCode)
	}
}

// TestStreamRequestBufferClamped pins the wire-buffer bound: a remote
// caller cannot make one POST allocate an arbitrarily large queue.
func TestStreamRequestBufferClamped(t *testing.T) {
	if got := (StreamRequest{Buffer: 1 << 30}).options().Buffer; got != maxWireBuffer {
		t.Fatalf("wire buffer of 1<<30 clamped to %d, want %d", got, maxWireBuffer)
	}
	if got := (StreamRequest{Buffer: 64}).options().Buffer; got != 64 {
		t.Fatalf("modest wire buffer altered: %d", got)
	}
}

// TestStreamServerSideFailureSurfaces pins the terminal-error path: a
// subscription that dies server-side (here: a situation ticker whose
// executor fails) must end the remote subscription with Err — not be
// mistaken for a transport loss and resumed forever.
func TestStreamServerSideFailureSurfaces(t *testing.T) {
	hub := NewHub(HubConfig{})
	broken := NewEngine() // no sources: every Query errors
	ts := httptest.NewServer(NewServer(NewStreamer(hub, broken)))
	defer ts.Close()
	c := NewClient(ts.URL)
	box := Box{MinLat: 41, MinLon: 4, MaxLat: 45, MaxLon: 9}
	sub, err := c.Subscribe(Request{Kind: KindSituation, Box: &box},
		SubOptions{Tick: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.Updates():
			if !ok {
				if err := sub.Err(); err == nil || !strings.Contains(err.Error(), "no sources") {
					t.Fatalf("want the server-side failure in Err, got %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("server-side failure never terminated the remote subscription")
		}
	}
}

// TestHubReplayLargerThanBuffer pins the resume contract: every update
// still retained in the ring is delivered on resume even when the
// replay span exceeds the subscriber's configured queue bound.
func TestHubReplayLargerThanBuffer(t *testing.T) {
	hub := NewHub(HubConfig{})
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	armed, _ := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{Buffer: 2048})
	defer armed.Cancel()
	for _, s := range testStates(1, 1000) {
		hub.PublishState(s)
	}
	sub, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world},
		SubOptions{FromSeq: 1, Buffer: 8}) // replay of 999 into a bound of 8
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	got := collect(t, sub, 999)
	for i, u := range got {
		if want := uint64(i + 2); u.Seq != want {
			t.Fatalf("replay seq %d at %d, want %d", u.Seq, i, want)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("resume dropped %d retained updates", sub.Dropped())
	}
}

// --- federation ------------------------------------------------------------------

// TestFederationMergesPeerDuplicateFree pins the acceptance criterion's
// federation half at the engine level: a daemon with a -peer source
// merges the remote picture into local answers, deduplicated on
// (MMSI, timestamp).
func TestFederationMergesPeerDuplicateFree(t *testing.T) {
	// Peer A holds vessels 1..8; the local daemon holds 5..12 — the
	// overlap (5..8) must appear exactly once.
	all := testStates(12, 10)
	perVessel := 10
	remote := fill(tstore.New(), all[:8*perVessel])
	local := fill(tstore.New(), all[4*perVessel:])

	tsA := httptest.NewServer(NewServer(NewEngine(NewStoreSource("peer-archive", remote))))
	defer tsA.Close()
	peer := NewClient(tsA.URL)
	peer.PeerName = "peerA"
	eng := NewEngine(NewStoreSource("local", local), peer)

	box := Box{MinLat: 41, MinLon: 4, MaxLat: 46, MaxLon: 10}
	res, err := eng.Query(Request{Kind: KindSpaceTime, Box: &box})
	if err != nil {
		t.Fatal(err)
	}
	if want := 12 * perVessel; res.Count != want {
		t.Fatalf("federated spacetime returned %d states, want %d (12 vessels × %d, overlap deduplicated)",
			res.Count, want, perVessel)
	}
	seen := map[string]bool{}
	vessels := map[uint32]bool{}
	for _, s := range res.States {
		k := fmt.Sprintf("%d@%d", s.MMSI, s.At.UnixNano())
		if seen[k] {
			t.Fatalf("duplicate (MMSI, timestamp) in federated answer: %d @ %v", s.MMSI, s.At)
		}
		seen[k] = true
		vessels[s.MMSI] = true
	}
	if !vessels[201000001] {
		t.Fatal("vessel held only by the peer is missing from the federated answer")
	}
	if !vessels[201000012] {
		t.Fatal("vessel held only locally is missing from the federated answer")
	}
	if len(res.Sources) != 2 || res.Sources[1] != "peerA" {
		t.Fatalf("sources %v should name local + peerA", res.Sources)
	}

	// Trajectory and stats federate too.
	tr, err := eng.Query(Request{Kind: KindTrajectory, MMSI: 201000001})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count != perVessel {
		t.Fatalf("federated trajectory of a peer-only vessel: %d points, want %d", tr.Count, perVessel)
	}
	stats, err := eng.Query(Request{Kind: KindStats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stats.Vessels != 12 {
		t.Fatalf("federated stats count %d distinct vessels, want 12", stats.Stats.Vessels)
	}
}

// TestFederationDegradedPeer pins degraded mode: a dead peer contributes
// nothing and surfaces its failure in stats, but never fails the query.
func TestFederationDegradedPeer(t *testing.T) {
	local := fill(tstore.New(), testStates(3, 10))
	tsA := httptest.NewServer(NewServer(NewEngine(NewStoreSource("x", tstore.New()))))
	peer := NewClient(tsA.URL)
	peer.PeerName = "peerA"
	peer.PeerTimeout = 500 * time.Millisecond
	tsA.Close() // peer is down before the first query; federated reads
	// skip the retry policy, so the default client still degrades fast

	eng := NewEngine(NewStoreSource("local", local), peer)
	box := Box{MinLat: 41, MinLon: 4, MaxLat: 46, MaxLon: 10}
	res, err := eng.Query(Request{Kind: KindSpaceTime, Box: &box})
	if err != nil {
		t.Fatalf("degraded peer must not fail the query: %v", err)
	}
	if res.Count != 30 {
		t.Fatalf("local answer under degraded peer: %d states, want 30", res.Count)
	}
	stats, err := eng.Query(Request{Kind: KindStats})
	if err != nil {
		t.Fatal(err)
	}
	var peerStats *SourceStats
	for i := range stats.Stats.Sources {
		if stats.Stats.Sources[i].Name == "peerA" {
			peerStats = &stats.Stats.Sources[i]
		}
	}
	if peerStats == nil || peerStats.Err == "" {
		t.Fatalf("degraded peer must surface its error in stats, got %+v", stats.Stats.Sources)
	}
	if peer.PeerErr() == nil {
		t.Fatal("PeerErr should report the degradation")
	}
}

// TestFederationIsOneHop pins the loop guard: two mutually-peered
// daemons answer each other's federated reads locally, so a query
// terminates (and the peer's own peers do not amplify the answer).
func TestFederationIsOneHop(t *testing.T) {
	all := testStates(6, 8)
	stA := fill(tstore.New(), all[:3*8])
	stB := fill(tstore.New(), all[3*8:])

	// Mutual peering: build both clients first, point them at the
	// servers once both exist.
	peerOfA, peerOfB := NewClient(""), NewClient("")
	engA := NewEngine(NewStoreSource("a", stA), peerOfA)
	engB := NewEngine(NewStoreSource("b", stB), peerOfB)
	tsA := httptest.NewServer(NewServer(engA))
	defer tsA.Close()
	tsB := httptest.NewServer(NewServer(engB))
	defer tsB.Close()
	peerOfA.Base, peerOfA.PeerName = tsB.URL, "peerB" // A federates B
	peerOfB.Base, peerOfB.PeerName = tsA.URL, "peerA" // B federates A

	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		box := Box{MinLat: 41, MinLon: 4, MaxLat: 46, MaxLon: 10}
		res, err := engA.Query(Request{Kind: KindSpaceTime, Box: &box})
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	select {
	case err := <-errc:
		t.Fatal(err)
	case res := <-done:
		if res.Count != 6*8 {
			t.Fatalf("mutually-peered query returned %d states, want %d", res.Count, 6*8)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mutually-peered daemons looped: query never terminated")
	}

	// The guard itself: a Local request skips peers entirely.
	box := Box{MinLat: 41, MinLon: 4, MaxLat: 46, MaxLon: 10}
	res, err := engA.Query(Request{Kind: KindSpaceTime, Box: &box, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3*8 {
		t.Fatalf("local-only query returned %d states, want %d", res.Count, 3*8)
	}
	if len(res.Sources) != 1 || res.Sources[0] != "a" {
		t.Fatalf("local-only sources %v, want [a]", res.Sources)
	}
}
