package query

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/semstore"
	"repro/internal/tstore"
)

// --- validation -------------------------------------------------------------------

func TestAnomalyRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string // substring of the error; "" = valid
	}{
		{"per-vessel ok", Request{Kind: KindAnomalies, MMSI: 7}, ""},
		{"ranked ok (mmsi optional)", Request{Kind: KindAnomalies}, ""},
		{"ranked with limit ok", Request{Kind: KindAnomalies, Limit: 3}, ""},
		{"unknown kind still rejected", Request{Kind: "anomaly"}, "unknown kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.req.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}

	// The ranked form defaults its cap; the per-vessel form needs none.
	if r := (Request{Kind: KindAnomalies}).normalize(); r.Limit != DefaultAnomalyLimit {
		t.Fatalf("ranked default limit %d, want %d", r.Limit, DefaultAnomalyLimit)
	}
	if r := (Request{Kind: KindAnomalies, MMSI: 7}).normalize(); r.Limit != 0 {
		t.Fatalf("per-vessel form got a default limit %d", r.Limit)
	}
}

// --- fold vs batch oracles --------------------------------------------------------

// anomalyStates builds one vessel's history with a stop in the middle
// and a reporting gap near the end: underway, anchored, underway, 30
// minutes of silence, underway again.
func anomalyStates(mmsi uint32) []model.VesselState {
	var out []model.VesselState
	add := func(at time.Time, n int, lat, lon, kn float64) time.Time {
		for i := 0; i < n; i++ {
			out = append(out, model.VesselState{
				MMSI: mmsi, At: at,
				Pos:     geo.Point{Lat: lat + float64(i)*0.0004, Lon: lon + float64(i)*0.0006},
				SpeedKn: kn, CourseDeg: 45,
				Status: ais.StatusUnderWayEngine,
			})
			at = at.Add(time.Minute)
		}
		return at
	}
	at := add(t0, 15, 42.0, 5.0, 12)
	at = add(at, 12, 42.006, 5.009, 0.3)
	at = add(at, 15, 42.006, 5.009, 11)
	add(at.Add(30*time.Minute), 10, 42.02, 5.03, 11)
	return out
}

// TestAccumulatorMatchesBatchSegmenter pins the incremental episode
// segmenter to semstore.SegmentEpisodes: the closed episodes the fold
// emits, in order, are the batch segmentation of the same trajectory
// (minus the trailing open episode, which the batch flushes at stream
// end — kept only when it reaches MinDuration, exactly like Report's
// graduation rule).
func TestAccumulatorMatchesBatchSegmenter(t *testing.T) {
	const mmsi = 201000001
	pts := anomalyStates(mmsi)
	acc := NewAnomalyAccumulator(mmsi)
	var closed []semstore.Episode
	var gaps int
	for _, p := range pts {
		ep, gap := acc.Observe(p)
		if ep != nil {
			closed = append(closed, *ep)
		}
		if gap != nil {
			gaps++
		}
	}

	batch := semstore.SegmentEpisodes(&model.Trajectory{MMSI: mmsi, Points: pts}, nil, semstore.DefaultEpisodeConfig())
	// The final leg is still open online; the batch keeps it iff it made
	// MinDuration. Everything before it must agree exactly.
	if len(batch) < len(closed) {
		t.Fatalf("fold closed %d episodes, batch found %d", len(closed), len(batch))
	}
	for i, e := range closed {
		gj, _ := json.Marshal(e)
		wj, _ := json.Marshal(batch[i])
		if string(gj) != string(wj) {
			t.Fatalf("episode %d diverged:\n%s\n%s", i, gj, wj)
		}
	}
	if extra := len(batch) - len(closed); extra > 1 {
		t.Fatalf("batch found %d episodes the fold never closed", extra)
	}
	if gaps != 1 {
		t.Fatalf("fold saw %d gaps, want 1", gaps)
	}

	// The report's Episodes are exactly the closed ones, and the gap is
	// surfaced with its duration.
	va := acc.Report()
	if va == nil || len(va.Episodes) != len(closed) || va.Gaps != 1 || va.LastGap == nil {
		t.Fatalf("report off: %+v", va)
	}
	if got := time.Duration(va.LastGap.Duration); got != 31*time.Minute {
		t.Fatalf("gap duration %v, want 31m", got)
	}
	if va.Current == nil {
		t.Fatal("open episode missing from the report")
	}
	if va.Score < 0 || va.Score > 1 {
		t.Fatalf("score %v out of [0,1]", va.Score)
	}
}

// --- derive path over a plain store ----------------------------------------------

// TestAnomaliesDerivedFromStore pins that the kind answers from any
// Source — a bare archive, no online stage — by trajectory replay,
// deterministically, in both forms.
func TestAnomaliesDerivedFromStore(t *testing.T) {
	states := append(testStates(3, 40), anomalyStates(201000009)...)
	st := fill(tstore.New(), states)
	eng := NewEngine(NewStoreSource("archive", st))

	res, err := eng.Query(Request{Kind: KindAnomalies, MMSI: 201000009})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalies == nil || res.Anomalies.Vessel == nil || res.Count != 1 {
		t.Fatalf("per-vessel answer missing: %+v", res)
	}
	v := res.Anomalies.Vessel
	if v.MMSI != 201000009 || v.Samples != 52 || v.Gaps != 1 {
		t.Fatalf("per-vessel report off: %+v", v)
	}

	ranked, err := eng.Query(Request{Kind: KindAnomalies})
	if err != nil {
		t.Fatal(err)
	}
	if ranked.Anomalies == nil || len(ranked.Anomalies.Ranked) != 4 || ranked.Count != 4 {
		t.Fatalf("ranked answer off: %+v", ranked.Anomalies)
	}
	for i := 1; i < len(ranked.Anomalies.Ranked); i++ {
		if ranked.Anomalies.Ranked[i].Score > ranked.Anomalies.Ranked[i-1].Score {
			t.Fatal("ranking not score-descending")
		}
	}

	// The ranked cap keeps the top of the same order (each source
	// truncates before the merge, so the cap never reorders).
	capped, err := eng.Query(Request{Kind: KindAnomalies, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(capped.Anomalies.Ranked)
	fj, _ := json.Marshal(ranked.Anomalies.Ranked[:2])
	if string(cj) != string(fj) {
		t.Fatalf("limit 2 is not the top of the full ranking:\n%s\n%s", cj, fj)
	}

	// Determinism: replaying the same archive answers byte-identically.
	for _, req := range []Request{
		{Kind: KindAnomalies, MMSI: 201000009},
		{Kind: KindAnomalies},
	} {
		a, _ := eng.Query(req)
		b, _ := eng.Query(req)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("%s not deterministic:\n%s\n%s", req.Kind, aj, bj)
		}
	}

	// Unknown vessel: empty answer, not an error.
	missing, err := eng.Query(Request{Kind: KindAnomalies, MMSI: 999})
	if err != nil || missing.Anomalies != nil || missing.Count != 0 {
		t.Fatalf("unknown vessel: res %+v err %v", missing, err)
	}
}

// --- standing queries (tickers), in-process and over /v1/stream -------------------

// TestAnomaliesTickers pins the standing form: the Streamer recomputes
// the deviation report on a cadence — per-vessel and fleet-ranked.
func TestAnomaliesTickers(t *testing.T) {
	st := fill(tstore.New(), testStates(2, 20))
	eng := NewEngine(NewStoreSource("archive", st))
	streamer := NewStreamer(NewHub(HubConfig{}), eng)

	for name, req := range map[string]Request{
		"vessel": {Kind: KindAnomalies, MMSI: 201000001},
		"ranked": {Kind: KindAnomalies},
	} {
		t.Run(name, func(t *testing.T) {
			sub, err := streamer.Subscribe(req, SubOptions{Tick: 15 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Cancel()
			got := collect(t, sub, 3)
			oneShot, err := eng.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			for i, u := range got {
				if u.Kind != UpdateAnomalies || u.Anomalies == nil {
					t.Fatalf("update %d: %+v", i, u)
				}
				if u.Seq != uint64(i+1) {
					t.Fatalf("tick seq %d, want %d", u.Seq, i+1)
				}
				tj, _ := json.Marshal(u.Anomalies)
				wj, _ := json.Marshal(oneShot.Anomalies)
				if string(tj) != string(wj) {
					t.Fatalf("tick %d diverged from one-shot:\n%s\n%s", i, tj, wj)
				}
			}
		})
	}

	// An unknown vessel ticks nothing instead of streaming nils.
	sub, err := streamer.Subscribe(Request{Kind: KindAnomalies, MMSI: 999}, SubOptions{Tick: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	select {
	case u := <-sub.Updates():
		t.Fatalf("unknown vessel produced a tick: %+v", u)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestAnomaliesStreamOverHTTP pins the remote standing form over
// /v1/stream, served and consumed by the wire client.
func TestAnomaliesStreamOverHTTP(t *testing.T) {
	st := fill(tstore.New(), testStates(2, 20))
	hub := NewHub(HubConfig{})
	eng := NewEngine(NewStoreSource("archive", st))
	ts := httptest.NewServer(NewServer(NewStreamer(hub, eng)))
	defer ts.Close()
	c := NewClient(ts.URL)

	req := Request{Kind: KindAnomalies}
	sub, err := c.Subscribe(req, SubOptions{Tick: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	got := collect(t, sub, 3)
	oneShot, err := c.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range got {
		if u.Kind != UpdateAnomalies || u.Anomalies == nil {
			t.Fatalf("update %d: %+v", i, u)
		}
		if i > 0 && u.Seq <= got[i-1].Seq {
			t.Fatalf("ticks out of sequence: %d after %d", u.Seq, got[i-1].Seq)
		}
		uj, _ := json.Marshal(u.Anomalies)
		wj, _ := json.Marshal(oneShot.Anomalies)
		if string(uj) != string(wj) {
			t.Fatalf("remote tick diverged from one-shot:\n%s\n%s", uj, wj)
		}
	}
}

// --- federation -------------------------------------------------------------------

// TestAnomaliesFederate pins the peer path: a vessel held only by a
// remote daemon answers through federation identically to asking the
// peer, and the ranked form merges both fleets into the one order a
// single engine over the union would produce.
func TestAnomaliesFederate(t *testing.T) {
	all := testStates(4, 25)
	perVessel := 25
	remote := fill(tstore.New(), all[:2*perVessel]) // vessels 1, 2
	local := fill(tstore.New(), all[2*perVessel:])  // vessels 3, 4
	peerEng := NewEngine(NewStoreSource("peer-archive", remote))
	tsA := httptest.NewServer(NewServer(peerEng))
	defer tsA.Close()
	peer := NewClient(tsA.URL)
	peer.PeerName = "peerA"
	eng := NewEngine(NewStoreSource("local", local), peer)

	const peerOnly = 201000001
	fed, err := eng.Query(Request{Kind: KindAnomalies, MMSI: peerOnly})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := peerEng.Query(Request{Kind: KindAnomalies, MMSI: peerOnly})
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(fed.Anomalies)
	wj, _ := json.Marshal(direct.Anomalies)
	if fed.Anomalies == nil || string(gj) != string(wj) {
		t.Fatalf("federated per-vessel diverged from the peer's own answer:\n%s\n%s", gj, wj)
	}

	union := NewEngine(NewStoreSource("union", fill(tstore.New(), all)))
	fedRanked, err := eng.Query(Request{Kind: KindAnomalies})
	if err != nil {
		t.Fatal(err)
	}
	unionRanked, err := union.Query(Request{Kind: KindAnomalies})
	if err != nil {
		t.Fatal(err)
	}
	gj, _ = json.Marshal(fedRanked.Anomalies)
	wj, _ = json.Marshal(unionRanked.Anomalies)
	if string(gj) != string(wj) {
		t.Fatalf("federated ranking diverged from the union engine:\n%s\n%s", gj, wj)
	}

	// A dead peer degrades: the local fleet still answers.
	tsA.Close()
	peer.PeerTimeout = 200 * time.Millisecond
	res, err := eng.Query(Request{Kind: KindAnomalies})
	if err != nil || res.Anomalies == nil || len(res.Anomalies.Ranked) != 2 {
		t.Fatalf("local ranking under dead peer: res %+v err %v", res.Anomalies, err)
	}
}

// BenchmarkAnomaliesQuery measures the derive-path fleet ranking (every
// vessel's history replayed through the fold) — the cost a query pays
// when no online stage runs.
func BenchmarkAnomaliesQuery(b *testing.B) {
	st := fill(tstore.New(), testStates(4, 200))
	eng := NewEngine(NewStoreSource("archive", st))
	req := Request{Kind: KindAnomalies}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}
