package query

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tstore"
)

// --- validation ------------------------------------------------------------------

func TestTrackIntelRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string // substring of the error; "" = valid
	}{
		{"track ok", Request{Kind: KindTrack, MMSI: 7}, ""},
		{"track needs mmsi", Request{Kind: KindTrack}, "requires mmsi"},
		{"quality ok", Request{Kind: KindQuality, MMSI: 7}, ""},
		{"quality needs mmsi", Request{Kind: KindQuality}, "requires mmsi"},
		{"predict ok", Request{Kind: KindPredict, MMSI: 7, Horizon: Duration(15 * time.Minute)}, ""},
		{"predict needs mmsi", Request{Kind: KindPredict, Horizon: Duration(time.Minute)}, "requires mmsi"},
		{"predict needs horizon", Request{Kind: KindPredict, MMSI: 7}, "positive horizon"},
		{"predict negative horizon", Request{Kind: KindPredict, MMSI: 7, Horizon: Duration(-time.Minute)}, "positive horizon"},
		{"predict horizon capped", Request{Kind: KindPredict, MMSI: 7, Horizon: Duration(25 * time.Hour)}, "exceeds"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.req.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

// --- derive path over a plain store ----------------------------------------------

// TestTrackIntelDerivedFromStore pins that the three kinds answer from
// any Source — here a bare archive with no online stage — by trajectory
// replay, with sane, deterministic payloads.
func TestTrackIntelDerivedFromStore(t *testing.T) {
	states := testStates(4, 30)
	st := fill(tstore.New(), states)
	eng := NewEngine(NewStoreSource("archive", st))
	const mmsi = 201000002

	tr, err := eng.Query(Request{Kind: KindTrack, MMSI: mmsi})
	if err != nil {
		t.Fatal(err)
	}
	ts := tr.Track
	if ts == nil || tr.Count != 1 {
		t.Fatalf("track answer missing: %+v", tr)
	}
	if ts.MMSI != mmsi || !ts.Confirmed || ts.Hits != 30 {
		t.Fatalf("track state off: %+v", ts)
	}
	if !ts.At.Equal(t0.Add(29 * time.Minute)) {
		t.Fatalf("track At %v, want the last fix", ts.At)
	}
	if ts.SigmaM <= 0 || ts.MajorM < ts.MinorM || ts.Sources["ais"] != 30 {
		t.Fatalf("track uncertainty/sources off: %+v", ts)
	}

	pr, err := eng.Query(Request{Kind: KindPredict, MMSI: mmsi, Horizon: Duration(15 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	p := pr.Prediction
	if p == nil {
		t.Fatal("prediction missing")
	}
	if !p.From.Equal(ts.At) || !p.At.Equal(ts.At.Add(15*time.Minute)) {
		t.Fatalf("prediction timeline off: %+v", p)
	}
	if p.Method == "" || p.ConfidenceM <= 0 {
		t.Fatalf("prediction method/confidence off: %+v", p)
	}
	// The fleet marches north-east; the forecast must keep going that way.
	if p.Lat <= ts.Lat || p.Lon <= ts.Lon {
		t.Fatalf("prediction did not extrapolate north-east: track %.4f,%.4f → %.4f,%.4f",
			ts.Lat, ts.Lon, p.Lat, p.Lon)
	}

	qr, err := eng.Query(Request{Kind: KindQuality, MMSI: mmsi})
	if err != nil {
		t.Fatal(err)
	}
	q := qr.Quality
	if q == nil || q.Checked != 30 {
		t.Fatalf("quality answer off: %+v", q)
	}
	if q.Flagged != 0 || q.Reliability <= 0.9 || q.LowerBound >= q.Reliability {
		t.Fatalf("clean fleet scored %+v", q)
	}

	// Determinism: replaying the same archive answers byte-identically.
	for _, req := range []Request{
		{Kind: KindTrack, MMSI: mmsi},
		{Kind: KindPredict, MMSI: mmsi, Horizon: Duration(15 * time.Minute)},
		{Kind: KindQuality, MMSI: mmsi},
	} {
		a, _ := eng.Query(req)
		b, _ := eng.Query(req)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("%s not deterministic:\n%s\n%s", req.Kind, aj, bj)
		}
	}

	// Unknown vessel: empty answer, not an error.
	missing, err := eng.Query(Request{Kind: KindTrack, MMSI: 999})
	if err != nil || missing.Track != nil || missing.Count != 0 {
		t.Fatalf("unknown vessel: res %+v err %v", missing, err)
	}
}

// --- standing queries (tickers), in-process and over /v1/stream -------------------

// TestTrackIntelTickers pins the standing form of all three kinds: a
// Streamer recomputes the answer on a cadence — the predict ticker is
// how a display shows dead-reckoned motion between AIS reports.
func TestTrackIntelTickers(t *testing.T) {
	st := fill(tstore.New(), testStates(2, 20))
	eng := NewEngine(NewStoreSource("archive", st))
	streamer := NewStreamer(NewHub(HubConfig{}), eng)
	const mmsi = 201000001

	reqs := map[UpdateKind]Request{
		UpdateTrack:   {Kind: KindTrack, MMSI: mmsi},
		UpdatePredict: {Kind: KindPredict, MMSI: mmsi, Horizon: Duration(10 * time.Minute)},
		UpdateQuality: {Kind: KindQuality, MMSI: mmsi},
	}
	for kind, req := range reqs {
		t.Run(string(kind), func(t *testing.T) {
			sub, err := streamer.Subscribe(req, SubOptions{Tick: 15 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Cancel()
			got := collect(t, sub, 3)
			oneShot, err := eng.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			for i, u := range got {
				if u.Kind != kind {
					t.Fatalf("update %d kind %s, want %s", i, u.Kind, kind)
				}
				if u.Seq != uint64(i+1) {
					t.Fatalf("tick seq %d, want %d", u.Seq, i+1)
				}
				// The archive is quiescent, so every tick equals the
				// one-shot answer.
				var tick, want any
				switch kind {
				case UpdateTrack:
					tick, want = u.Track, oneShot.Track
				case UpdatePredict:
					tick, want = u.Prediction, oneShot.Prediction
				case UpdateQuality:
					tick, want = u.Quality, oneShot.Quality
				}
				tj, _ := json.Marshal(tick)
				wj, _ := json.Marshal(want)
				if string(tj) != string(wj) {
					t.Fatalf("tick %d diverged from one-shot:\n%s\n%s", i, tj, wj)
				}
			}
		})
	}

	// An unknown vessel ticks nothing (no payload, no seq) instead of
	// streaming nils.
	sub, err := streamer.Subscribe(Request{Kind: KindTrack, MMSI: 999}, SubOptions{Tick: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	select {
	case u := <-sub.Updates():
		t.Fatalf("unknown vessel produced a tick: %+v", u)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestTrackIntelStreamOverHTTP pins the remote standing form: the same
// predict subscription over /v1/stream, served and consumed by the
// wire client.
func TestTrackIntelStreamOverHTTP(t *testing.T) {
	st := fill(tstore.New(), testStates(2, 20))
	hub := NewHub(HubConfig{})
	eng := NewEngine(NewStoreSource("archive", st))
	ts := httptest.NewServer(NewServer(NewStreamer(hub, eng)))
	defer ts.Close()
	c := NewClient(ts.URL)
	const mmsi = 201000002

	req := Request{Kind: KindPredict, MMSI: mmsi, Horizon: Duration(5 * time.Minute)}
	sub, err := c.Subscribe(req, SubOptions{Tick: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	got := collect(t, sub, 3)
	oneShot, err := c.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range got {
		if u.Kind != UpdatePredict || u.Prediction == nil {
			t.Fatalf("update %d: %+v", i, u)
		}
		if i > 0 && u.Seq <= got[i-1].Seq {
			t.Fatalf("ticks out of sequence: %d after %d", u.Seq, got[i-1].Seq)
		}
		uj, _ := json.Marshal(u.Prediction)
		wj, _ := json.Marshal(oneShot.Prediction)
		if string(uj) != string(wj) {
			t.Fatalf("remote tick diverged from one-shot:\n%s\n%s", uj, wj)
		}
	}
}

// --- federation -------------------------------------------------------------------

// TestTrackIntelFederates pins the peer path: a vessel held only by a
// remote daemon answers all three kinds through federation, identically
// to asking the peer directly — one exchange per answer, computed
// peer-side.
func TestTrackIntelFederates(t *testing.T) {
	all := testStates(4, 25)
	perVessel := 25
	remote := fill(tstore.New(), all[:2*perVessel]) // vessels 1, 2
	local := fill(tstore.New(), all[2*perVessel:])  // vessels 3, 4
	peerEng := NewEngine(NewStoreSource("peer-archive", remote))
	tsA := httptest.NewServer(NewServer(peerEng))
	defer tsA.Close()
	peer := NewClient(tsA.URL)
	peer.PeerName = "peerA"
	eng := NewEngine(NewStoreSource("local", local), peer)

	const peerOnly = 201000001
	for _, req := range []Request{
		{Kind: KindTrack, MMSI: peerOnly},
		{Kind: KindPredict, MMSI: peerOnly, Horizon: Duration(15 * time.Minute)},
		{Kind: KindQuality, MMSI: peerOnly},
	} {
		t.Run(string(req.Kind), func(t *testing.T) {
			fed, err := eng.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := peerEng.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			var got, want any
			switch req.Kind {
			case KindTrack:
				got, want = fed.Track, direct.Track
			case KindPredict:
				got, want = fed.Prediction, direct.Prediction
			case KindQuality:
				got, want = fed.Quality, direct.Quality
			}
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			if want == nil || string(gj) != string(wj) {
				t.Fatalf("federated %s diverged from the peer's own answer:\n%s\n%s", req.Kind, gj, wj)
			}
		})
	}

	// A vessel both sides hold: the merged answer prefers the fresher
	// track — here both replay identical data, so it must equal either.
	// And a dead peer degrades: local vessels still answer.
	tsA.Close()
	peer.PeerTimeout = 200 * time.Millisecond
	res, err := eng.Query(Request{Kind: KindTrack, MMSI: 201000003})
	if err != nil || res.Track == nil {
		t.Fatalf("local track under dead peer: res %+v err %v", res, err)
	}
}

// BenchmarkPredictQuery measures the derive-path predict (replay +
// per-query route training over one trajectory) — the cost a query pays
// when no online stage runs.
func BenchmarkPredictQuery(b *testing.B) {
	st := fill(tstore.New(), testStates(4, 200))
	eng := NewEngine(NewStoreSource("archive", st))
	req := Request{Kind: KindPredict, MMSI: 201000002, Horizon: Duration(15 * time.Minute)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}
