package query

import (
	"context"
	"time"

	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/obs"
)

// This file makes *Client a Source — the federation member of the read
// surface. The Source and Executor contracts are two views of the same
// remote daemon: an Executor answers whole typed Requests, a Source
// answers the six primitive reads an Engine merges. Implementing the
// latter in terms of the former means any daemon serving /v1/query can
// be composed into another daemon's query engine verbatim:
//
//	eng := query.NewEngine(
//	    query.NewLiveSource(sharded),       // this daemon's picture
//	    query.NewClient("peer-a:8080"),     // a federation member
//	)
//
// which is exactly what `maritimed -peer URL` wires up. Results merge
// and deduplicate on (MMSI, timestamp) like any other source pair.
//
// Two federation-specific behaviours:
//
//   - One hop only. Every federated read sets Request.Local, so the peer
//     answers from its own sources and does not fan out to *its* peers —
//     mutually-peered daemons cannot create a query cycle.
//   - Degraded mode. A peer that times out (PeerTimeout, default 5s) or
//     errors contributes nothing to that answer instead of failing it;
//     the failure is retained and surfaced through Stats().Err, so an
//     operator sees the degradation in any stats read.
//
// The actual read bodies live on peerView, a Source view of the client
// bound to (at most) one traced request: when the engine runs a traced
// query it substitutes c.withTrace(tr), and every federated exchange
// forwards Request.Trace, grafts the peer's returned spans under a
// peer/<addr> span (rebased onto the local trace's clock), and records
// a degraded child when the peer failed — one stitched tree spanning
// daemons instead of a trace that dies at the HTTP hop.

// PeerSource is a Source that answers from another daemon. Engines skip
// peer sources when a request is marked Local — the loop guard that keeps
// federation one hop deep.
type PeerSource interface {
	Source
	// Peer identifies the federation member (its base URL).
	Peer() string
}

// traceSource is a Source that can bind a per-request trace; the engine
// substitutes the returned view for the duration of one traced request.
type traceSource interface {
	withTrace(tr *obs.Trace) Source
}

// Name implements Source: the label peers carry in Result.Sources.
func (c *Client) Name() string {
	if c.PeerName != "" {
		return c.PeerName
	}
	return "peer:" + c.Base
}

// Peer implements PeerSource.
func (c *Client) Peer() string { return c.Base }

// withTrace implements traceSource.
func (c *Client) withTrace(tr *obs.Trace) Source { return peerView{c: c, tr: tr} }

// PeerErr returns the most recent federated-read failure (nil while the
// peer is healthy or after it recovers).
func (c *Client) PeerErr() error {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	return c.peerErr
}

func (c *Client) peerTimeout() time.Duration {
	if c.PeerTimeout > 0 {
		return c.PeerTimeout
	}
	return 5 * time.Second
}

// notePeer records the read's outcome and emits a flight event on the
// healthy<->degraded edge (not per failing read — a dead peer under a
// query storm is one incident, not a thousand).
func (c *Client) notePeer(err error) {
	c.peerMu.Lock()
	wasDown := c.peerDown
	c.peerErr = err
	c.peerDown = err != nil
	c.peerMu.Unlock()
	if c.Flight == nil || wasDown == (err != nil) {
		return
	}
	if err != nil {
		c.Flight.Record(obs.FlightWarn, "query", "federation peer degraded",
			obs.FS("peer", c.Base), obs.FS("err", err.Error()))
	} else {
		c.Flight.Record(obs.FlightInfo, "query", "federation peer recovered",
			obs.FS("peer", c.Base))
	}
}

// peerView is the client's Source implementation, carrying the trace of
// the request it is answering (nil on the untraced path — the Client's
// own Source methods delegate through a zero-trace view).
type peerView struct {
	c  *Client
	tr *obs.Trace
}

// Name implements Source.
func (v peerView) Name() string { return v.c.Name() }

// Peer implements PeerSource.
func (v peerView) Peer() string { return v.c.Base }

// peerQuery issues one federated read: local-only on the peer, bounded
// by the peer timeout, failures recorded instead of propagated. Callers
// use the returned error (not PeerErr, which a concurrent recovered read
// may have cleared in the meantime). The read deliberately skips the
// client's retry policy: a dead peer must degrade after one connection
// attempt, not charge backoff to every local query that fans to it —
// retrying is the next query's job. Under a trace, the peer computes its
// own stage spans (Request.Trace forwarded) and stitch grafts them in.
func (v peerView) peerQuery(req Request) (*Result, error) {
	c := v.c
	req.Local = true
	req.Trace = v.tr != nil
	start := v.tr.Offset()
	t0 := time.Now()
	//lint:ignore ctxflow the Source interface is ctx-free (ROADMAP: ctx threading lands with the cluster refactor); the peer timeout bounds this detached call
	ctx, cancel := context.WithTimeout(context.Background(), c.peerTimeout())
	defer cancel()
	res, err := c.queryContext(ctx, req, RetryPolicy{})
	c.notePeer(err)
	if v.tr != nil {
		v.stitch(start, time.Since(t0), res, err)
	}
	return res, err
}

// stitch grafts one federated exchange into the local trace: a
// peer/<addr> span nested under this source's fan-out span, the peer's
// own stages as its children (names path-prefixed so two daemons' merge
// spans stay distinct, offsets rebased onto the local clock — the hop's
// network time is the gap between the parent and its children), and a
// degraded child instead of silence when the peer failed.
func (v peerView) stitch(start, dur time.Duration, res *Result, err error) {
	parent := "peer/" + v.c.Base
	v.tr.Add(obs.Span{Name: parent, Parent: "source:" + v.c.Name(), Start: start, Dur: dur})
	if err != nil {
		v.tr.Add(obs.Span{Name: parent + "/degraded", Parent: parent, Start: start, Dur: dur})
		return
	}
	for _, ts := range res.Trace {
		p := parent
		if ts.Parent != "" {
			p = parent + "/" + ts.Parent
		}
		v.tr.Add(obs.Span{
			Name:   parent + "/" + ts.Name,
			Parent: p,
			Start:  start + time.Duration(ts.StartNS),
			Dur:    time.Duration(ts.DurNS),
		})
	}
}

// Trajectory implements Source.
func (v peerView) Trajectory(mmsi uint32, from, to time.Time) []model.VesselState {
	res, err := v.peerQuery(Request{Kind: KindTrajectory, MMSI: mmsi, From: from, To: to})
	if err != nil {
		return nil
	}
	return res.ModelStates()
}

// SpaceTime implements Source.
func (v peerView) SpaceTime(r geo.Rect, from, to time.Time) []model.VesselState {
	b := BoxOf(r)
	res, err := v.peerQuery(Request{Kind: KindSpaceTime, Box: &b, From: from, To: to})
	if err != nil {
		return nil
	}
	return res.ModelStates()
}

// Nearest implements Source.
func (v peerView) Nearest(p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState {
	res, err := v.peerQuery(Request{
		Kind: KindNearest, Lat: p.Lat, Lon: p.Lon, At: at, Tol: Duration(tol), K: k,
	})
	if err != nil {
		return nil
	}
	return res.ModelStates()
}

// Live implements Source.
func (v peerView) Live(r geo.Rect) []model.VesselState {
	b := BoxOf(r)
	res, err := v.peerQuery(Request{Kind: KindLivePicture, Box: &b})
	if err != nil {
		return nil
	}
	return res.ModelStates()
}

// Alerts implements Source.
func (v peerView) Alerts() []events.Alert {
	res, err := v.peerQuery(Request{Kind: KindAlertHistory})
	if err != nil {
		return nil
	}
	out := make([]events.Alert, len(res.Alerts))
	for i, a := range res.Alerts {
		out[i] = a.Model()
	}
	return out
}

// Stats implements Source: the peer's aggregate holdings under this
// peer's name, with the degradation (if any) in Err.
func (v peerView) Stats() SourceStats {
	res, err := v.peerQuery(Request{Kind: KindStats})
	if err != nil {
		return SourceStats{Name: v.Name(), Err: err.Error()}
	}
	if res.Stats == nil {
		// A nonconforming peer (version skew, interposed proxy) must
		// degrade like any other failure, not panic the daemon.
		return SourceStats{Name: v.Name(), Err: "peer answered without stats"}
	}
	st := res.Stats
	return SourceStats{
		Name: v.Name(), Points: st.Points, Vessels: st.Vessels,
		Live: st.Live, Alerts: st.Alerts,
	}
}

// Track implements TrackIntelSource: the peer computes (or reads) the
// fused state server-side, so a federated track answer costs one
// exchange, not a trajectory fetch plus a local replay.
func (v peerView) Track(mmsi uint32) (*TrackState, bool) {
	res, err := v.peerQuery(Request{Kind: KindTrack, MMSI: mmsi})
	if err != nil || res.Track == nil {
		return nil, false
	}
	return res.Track, true
}

// Predict implements TrackIntelSource.
func (v peerView) Predict(mmsi uint32, horizon time.Duration) (*Prediction, bool) {
	res, err := v.peerQuery(Request{Kind: KindPredict, MMSI: mmsi, Horizon: Duration(horizon)})
	if err != nil || res.Prediction == nil {
		return nil, false
	}
	return res.Prediction, true
}

// Quality implements TrackIntelSource.
func (v peerView) Quality(mmsi uint32) (*QualityScore, bool) {
	res, err := v.peerQuery(Request{Kind: KindQuality, MMSI: mmsi})
	if err != nil || res.Quality == nil {
		return nil, false
	}
	return res.Quality, true
}

// VesselAnomaly implements AnomalySource: the peer folds (or reads) the
// behavior profile server-side, one exchange per federated answer.
func (v peerView) VesselAnomaly(mmsi uint32) (*VesselAnomaly, bool) {
	res, err := v.peerQuery(Request{Kind: KindAnomalies, MMSI: mmsi})
	if err != nil || res.Anomalies == nil || res.Anomalies.Vessel == nil {
		return nil, false
	}
	return res.Anomalies.Vessel, true
}

// RankedAnomalies implements AnomalySource. A degraded peer answers
// ok=false and contributes nothing, like every other federated read.
func (v peerView) RankedAnomalies(limit int) ([]VesselAnomaly, bool) {
	res, err := v.peerQuery(Request{Kind: KindAnomalies, Limit: limit})
	if err != nil || res.Anomalies == nil {
		return nil, false
	}
	return res.Anomalies.Ranked, true
}

// DistinctMMSI implements Source: one stats read with the identifier
// sets requested — the peer answers with a sorted uint32 list, so a
// federated stats poll moves O(vessels) integers instead of the peer's
// entire worldwide live picture. A degraded peer contributes nil, like
// every other federated read.
func (v peerView) DistinctMMSI() []uint32 {
	_, set := v.StatsWithMMSI()
	return set
}

// StatsWithMMSI implements StatsSetSource: the engine's stats
// aggregation costs this peer exactly one HTTP exchange, carrying both
// the aggregate numbers and the distinct identifier set.
func (v peerView) StatsWithMMSI() (SourceStats, []uint32) {
	res, err := v.peerQuery(Request{Kind: KindStats, MMSIs: true})
	if err != nil {
		return SourceStats{Name: v.Name(), Err: err.Error()}, nil
	}
	if res.Stats == nil {
		return SourceStats{Name: v.Name(), Err: "peer answered without stats"}, nil
	}
	st := res.Stats
	return SourceStats{
		Name: v.Name(), Points: st.Points, Vessels: st.Vessels,
		Live: st.Live, Alerts: st.Alerts,
	}, st.MMSIs
}

// --- the Client's own Source surface: untraced delegations -----------------------

// Trajectory implements Source.
func (c *Client) Trajectory(mmsi uint32, from, to time.Time) []model.VesselState {
	return peerView{c: c}.Trajectory(mmsi, from, to)
}

// SpaceTime implements Source.
func (c *Client) SpaceTime(r geo.Rect, from, to time.Time) []model.VesselState {
	return peerView{c: c}.SpaceTime(r, from, to)
}

// Nearest implements Source.
func (c *Client) Nearest(p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState {
	return peerView{c: c}.Nearest(p, at, tol, k)
}

// Live implements Source.
func (c *Client) Live(r geo.Rect) []model.VesselState { return peerView{c: c}.Live(r) }

// Alerts implements Source.
func (c *Client) Alerts() []events.Alert { return peerView{c: c}.Alerts() }

// Stats implements Source.
func (c *Client) Stats() SourceStats { return peerView{c: c}.Stats() }

// Track implements TrackIntelSource.
func (c *Client) Track(mmsi uint32) (*TrackState, bool) { return peerView{c: c}.Track(mmsi) }

// Predict implements TrackIntelSource.
func (c *Client) Predict(mmsi uint32, horizon time.Duration) (*Prediction, bool) {
	return peerView{c: c}.Predict(mmsi, horizon)
}

// Quality implements TrackIntelSource.
func (c *Client) Quality(mmsi uint32) (*QualityScore, bool) { return peerView{c: c}.Quality(mmsi) }

// VesselAnomaly implements AnomalySource.
func (c *Client) VesselAnomaly(mmsi uint32) (*VesselAnomaly, bool) {
	return peerView{c: c}.VesselAnomaly(mmsi)
}

// RankedAnomalies implements AnomalySource.
func (c *Client) RankedAnomalies(limit int) ([]VesselAnomaly, bool) {
	return peerView{c: c}.RankedAnomalies(limit)
}

// DistinctMMSI implements Source.
func (c *Client) DistinctMMSI() []uint32 { return peerView{c: c}.DistinctMMSI() }

// StatsWithMMSI implements StatsSetSource.
func (c *Client) StatsWithMMSI() (SourceStats, []uint32) { return peerView{c: c}.StatsWithMMSI() }
