package query

import (
	"context"
	"time"

	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/model"
)

// This file makes *Client a Source — the federation member of the read
// surface. The Source and Executor contracts are two views of the same
// remote daemon: an Executor answers whole typed Requests, a Source
// answers the six primitive reads an Engine merges. Implementing the
// latter in terms of the former means any daemon serving /v1/query can
// be composed into another daemon's query engine verbatim:
//
//	eng := query.NewEngine(
//	    query.NewLiveSource(sharded),       // this daemon's picture
//	    query.NewClient("peer-a:8080"),     // a federation member
//	)
//
// which is exactly what `maritimed -peer URL` wires up. Results merge
// and deduplicate on (MMSI, timestamp) like any other source pair.
//
// Two federation-specific behaviours:
//
//   - One hop only. Every federated read sets Request.Local, so the peer
//     answers from its own sources and does not fan out to *its* peers —
//     mutually-peered daemons cannot create a query cycle.
//   - Degraded mode. A peer that times out (PeerTimeout, default 5s) or
//     errors contributes nothing to that answer instead of failing it;
//     the failure is retained and surfaced through Stats().Err, so an
//     operator sees the degradation in any stats read.

// PeerSource is a Source that answers from another daemon. Engines skip
// peer sources when a request is marked Local — the loop guard that keeps
// federation one hop deep.
type PeerSource interface {
	Source
	// Peer identifies the federation member (its base URL).
	Peer() string
}

// Name implements Source: the label peers carry in Result.Sources.
func (c *Client) Name() string {
	if c.PeerName != "" {
		return c.PeerName
	}
	return "peer:" + c.Base
}

// Peer implements PeerSource.
func (c *Client) Peer() string { return c.Base }

// PeerErr returns the most recent federated-read failure (nil while the
// peer is healthy or after it recovers).
func (c *Client) PeerErr() error {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	return c.peerErr
}

func (c *Client) peerTimeout() time.Duration {
	if c.PeerTimeout > 0 {
		return c.PeerTimeout
	}
	return 5 * time.Second
}

// peerQuery issues one federated read: local-only on the peer, bounded
// by the peer timeout, failures recorded instead of propagated. Callers
// use the returned error (not PeerErr, which a concurrent recovered read
// may have cleared in the meantime). The read deliberately skips the
// client's retry policy: a dead peer must degrade after one connection
// attempt, not charge backoff to every local query that fans to it —
// retrying is the next query's job.
func (c *Client) peerQuery(req Request) (*Result, error) {
	req.Local = true
	//lint:ignore ctxflow the Source interface is ctx-free (ROADMAP: ctx threading lands with the cluster refactor); the peer timeout bounds this detached call
	ctx, cancel := context.WithTimeout(context.Background(), c.peerTimeout())
	defer cancel()
	res, err := c.queryContext(ctx, req, RetryPolicy{})
	c.peerMu.Lock()
	c.peerErr = err
	c.peerMu.Unlock()
	return res, err
}

// Trajectory implements Source.
func (c *Client) Trajectory(mmsi uint32, from, to time.Time) []model.VesselState {
	res, err := c.peerQuery(Request{Kind: KindTrajectory, MMSI: mmsi, From: from, To: to})
	if err != nil {
		return nil
	}
	return res.ModelStates()
}

// SpaceTime implements Source.
func (c *Client) SpaceTime(r geo.Rect, from, to time.Time) []model.VesselState {
	b := BoxOf(r)
	res, err := c.peerQuery(Request{Kind: KindSpaceTime, Box: &b, From: from, To: to})
	if err != nil {
		return nil
	}
	return res.ModelStates()
}

// Nearest implements Source.
func (c *Client) Nearest(p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState {
	res, err := c.peerQuery(Request{
		Kind: KindNearest, Lat: p.Lat, Lon: p.Lon, At: at, Tol: Duration(tol), K: k,
	})
	if err != nil {
		return nil
	}
	return res.ModelStates()
}

// Live implements Source.
func (c *Client) Live(r geo.Rect) []model.VesselState {
	b := BoxOf(r)
	res, err := c.peerQuery(Request{Kind: KindLivePicture, Box: &b})
	if err != nil {
		return nil
	}
	return res.ModelStates()
}

// Alerts implements Source.
func (c *Client) Alerts() []events.Alert {
	res, err := c.peerQuery(Request{Kind: KindAlertHistory})
	if err != nil {
		return nil
	}
	out := make([]events.Alert, len(res.Alerts))
	for i, a := range res.Alerts {
		out[i] = a.Model()
	}
	return out
}

// Stats implements Source: the peer's aggregate holdings under this
// peer's name, with the degradation (if any) in Err.
func (c *Client) Stats() SourceStats {
	res, err := c.peerQuery(Request{Kind: KindStats})
	if err != nil {
		return SourceStats{Name: c.Name(), Err: err.Error()}
	}
	if res.Stats == nil {
		// A nonconforming peer (version skew, interposed proxy) must
		// degrade like any other failure, not panic the daemon.
		return SourceStats{Name: c.Name(), Err: "peer answered without stats"}
	}
	st := res.Stats
	return SourceStats{
		Name: c.Name(), Points: st.Points, Vessels: st.Vessels,
		Live: st.Live, Alerts: st.Alerts,
	}
}

// Track implements TrackIntelSource: the peer computes (or reads) the
// fused state server-side, so a federated track answer costs one
// exchange, not a trajectory fetch plus a local replay.
func (c *Client) Track(mmsi uint32) (*TrackState, bool) {
	res, err := c.peerQuery(Request{Kind: KindTrack, MMSI: mmsi})
	if err != nil || res.Track == nil {
		return nil, false
	}
	return res.Track, true
}

// Predict implements TrackIntelSource.
func (c *Client) Predict(mmsi uint32, horizon time.Duration) (*Prediction, bool) {
	res, err := c.peerQuery(Request{Kind: KindPredict, MMSI: mmsi, Horizon: Duration(horizon)})
	if err != nil || res.Prediction == nil {
		return nil, false
	}
	return res.Prediction, true
}

// Quality implements TrackIntelSource.
func (c *Client) Quality(mmsi uint32) (*QualityScore, bool) {
	res, err := c.peerQuery(Request{Kind: KindQuality, MMSI: mmsi})
	if err != nil || res.Quality == nil {
		return nil, false
	}
	return res.Quality, true
}

// VesselAnomaly implements AnomalySource: the peer folds (or reads) the
// behavior profile server-side, one exchange per federated answer.
func (c *Client) VesselAnomaly(mmsi uint32) (*VesselAnomaly, bool) {
	res, err := c.peerQuery(Request{Kind: KindAnomalies, MMSI: mmsi})
	if err != nil || res.Anomalies == nil || res.Anomalies.Vessel == nil {
		return nil, false
	}
	return res.Anomalies.Vessel, true
}

// RankedAnomalies implements AnomalySource. A degraded peer answers
// ok=false and contributes nothing, like every other federated read.
func (c *Client) RankedAnomalies(limit int) ([]VesselAnomaly, bool) {
	res, err := c.peerQuery(Request{Kind: KindAnomalies, Limit: limit})
	if err != nil || res.Anomalies == nil {
		return nil, false
	}
	return res.Anomalies.Ranked, true
}

// DistinctMMSI implements Source: one stats read with the identifier
// sets requested — the peer answers with a sorted uint32 list, so a
// federated stats poll moves O(vessels) integers instead of the peer's
// entire worldwide live picture. A degraded peer contributes nil, like
// every other federated read.
func (c *Client) DistinctMMSI() []uint32 {
	_, set := c.StatsWithMMSI()
	return set
}

// StatsWithMMSI implements StatsSetSource: the engine's stats
// aggregation costs this peer exactly one HTTP exchange, carrying both
// the aggregate numbers and the distinct identifier set.
func (c *Client) StatsWithMMSI() (SourceStats, []uint32) {
	res, err := c.peerQuery(Request{Kind: KindStats, MMSIs: true})
	if err != nil {
		return SourceStats{Name: c.Name(), Err: err.Error()}, nil
	}
	if res.Stats == nil {
		return SourceStats{Name: c.Name(), Err: "peer answered without stats"}, nil
	}
	st := res.Stats
	return SourceStats{
		Name: c.Name(), Points: st.Points, Vessels: st.Vessels,
		Live: st.Live, Alerts: st.Alerts,
	}, st.MMSIs
}
