// Track intelligence: the three per-vessel inference kinds — track
// (fused state + covariance ellipse), predict (position at t+Δ with a
// confidence envelope) and quality (data-integrity score) — and the
// deterministic replay that answers them from any Source.
//
// A Source that maintains live fused state (the ingest engine's
// internal/track stage, a federation peer) implements TrackIntelSource
// and answers directly; every other source is answered by replaying its
// stored trajectory through the same fusion/forecast/quality libraries
// the online stage runs (DeriveTrack / DerivePredict / DeriveQuality).
// The replay is a pure function of the point sequence — no wall clock,
// no randomness — so a tiered store that evicted and paged a vessel
// back answers byte-identically to one that never evicted it (pinned by
// TestQueryEquivalenceUnderEviction).
package query

import (
	"math"
	"time"

	"repro/internal/forecast"
	"repro/internal/fusion"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/quality"
	"repro/internal/uncertainty"
)

// Track-intelligence tuning shared by the online stage and the offline
// replay: both must feed the libraries identically or the equivalence
// tests (online==replay, evicted==resident) break.
const (
	// MaxPredictHorizon bounds Request.Horizon: beyond a day, neither the
	// route prior nor dead reckoning says anything defensible.
	MaxPredictHorizon = 24 * time.Hour
	// AISPositionSigmaM is the 1-sigma position noise assumed for AIS
	// fixes (GPS-grade; forecast.Kalman's replay uses the same figure).
	AISPositionSigmaM = 15.0
	// RouteCellDeg is the route-model grid cell size (≈5.5 km).
	RouteCellDeg = 0.05
	// predictConfWindow bounds the filter replay behind a prediction's
	// confidence envelope to the recent past, mirroring forecast.Kalman.
	predictConfWindow = 30 * time.Minute
)

// TrackIntelSource is the optional Source extension for the track
// intelligence kinds. Sources that maintain (or can fetch) fused track
// state answer directly — the engine takes an implementation's answer
// as authoritative, nil result included. Sources without it are
// answered by replaying their stored trajectory (DeriveTrack et al).
type TrackIntelSource interface {
	// Track returns the vessel's fused track state, or ok=false when the
	// vessel is unknown.
	Track(mmsi uint32) (*TrackState, bool)
	// Predict forecasts the vessel's position horizon ahead of its last
	// fix, or ok=false when the vessel is unknown.
	Predict(mmsi uint32, horizon time.Duration) (*Prediction, bool)
	// Quality returns the vessel's data-integrity score, or ok=false
	// when the vessel is unknown.
	Quality(mmsi uint32) (*QualityScore, bool)
}

// TrackState is the wire form of one vessel's fused track: the smoothed
// position/velocity estimate of a constant-velocity Kalman filter and
// its position-covariance error ellipse (1-sigma semi-axes; OrientDeg is
// the bearing of the major axis, degrees clockwise from north).
type TrackState struct {
	MMSI      uint32    `json:"mmsi"`
	At        time.Time `json:"at"`
	Lat       float64   `json:"lat"`
	Lon       float64   `json:"lon"`
	SpeedKn   float64   `json:"speed_kn"`
	CourseDeg float64   `json:"course_deg"`

	// SigmaM is the scalar position uncertainty (RMS of the ellipse axes).
	SigmaM    float64 `json:"sigma_m"`
	MajorM    float64 `json:"major_m"`
	MinorM    float64 `json:"minor_m"`
	OrientDeg float64 `json:"orient_deg"`

	Hits      int  `json:"hits"`
	Misses    int  `json:"misses"`
	Confirmed bool `json:"confirmed"`
	// Sources counts measurements per producing sensor ("ais", "radar").
	Sources map[string]int `json:"sources,omitempty"`
}

// Prediction is the wire form of a position forecast: where the vessel
// is expected At (= From + Horizon), by which predictor ("route-model"
// when the learned lane prior answered, "dead-reckoning" otherwise),
// with a 1-sigma confidence envelope radius in metres.
type Prediction struct {
	MMSI    uint32    `json:"mmsi"`
	From    time.Time `json:"from"`
	At      time.Time `json:"at"`
	Horizon Duration  `json:"horizon"`
	Lat     float64   `json:"lat"`
	Lon     float64   `json:"lon"`
	Method  string    `json:"method"`
	// ConfidenceM is the 1-sigma position uncertainty a constant-velocity
	// filter reaches when coasted (no measurements) over the horizon.
	ConfidenceM float64 `json:"confidence_m"`
}

// QualityScore is the wire form of one vessel's data-integrity profile:
// a Beta-Bernoulli reliability estimate over its checked messages
// (mean and conservative 2-sigma lower bound) with per-rule issue
// counts from the kinematic checks.
type QualityScore struct {
	MMSI        uint32  `json:"mmsi"`
	Reliability float64 `json:"reliability"`
	LowerBound  float64 `json:"lower_bound"`
	Checked     int     `json:"checked"`
	Flagged     int     `json:"flagged"`
	// Issues counts flagged messages per rule ("teleport", "sog-mismatch",
	// "time-regression").
	Issues map[string]int `json:"issues,omitempty"`
}

// AISMeasurement converts one AIS state sample into the fusion
// measurement the tracker consumes — the single conversion both the
// online stage and the offline replay use.
func AISMeasurement(p model.VesselState) fusion.Measurement {
	return fusion.Measurement{
		At: p.At, Pos: p.Pos, SigmaM: AISPositionSigmaM,
		Identity: p.MMSI, Source: "ais",
	}
}

// TrackStateOf renders a fused track into its wire form. The error
// ellipse is the eigendecomposition of the filter's 2×2 position
// covariance block; axes are 1-sigma, orientation is the bearing of the
// major axis.
func TrackStateOf(tr *fusion.Track) *TrackState {
	f := tr.Filter
	pos := f.Position()
	v := f.Velocity()
	// Position covariance block in the local EN plane: x = east, y = north.
	a, b, c := f.P[0], (f.P[1]+f.P[4])/2, f.P[5]
	mid := (a + c) / 2
	disc := math.Sqrt(((a-c)/2)*((a-c)/2) + b*b)
	l1, l2 := math.Max(mid+disc, 0), math.Max(mid-disc, 0)
	// Major-axis eigenvector angle from east, converted to a bearing.
	theta := 0.5 * math.Atan2(2*b, a-c)
	out := &TrackState{
		MMSI: tr.Identity, At: tr.LastSeen,
		Lat: pos.Lat, Lon: pos.Lon,
		SpeedKn: v.SpeedMS / geo.Knot, CourseDeg: v.CourseDg,
		SigmaM: f.PositionUncertaintyM(),
		MajorM: math.Sqrt(l1), MinorM: math.Sqrt(l2),
		OrientDeg: geo.NormalizeBearing(90 - theta*180/math.Pi),
		Hits:      tr.Hits, Misses: tr.Misses, Confirmed: tr.Confirmed,
	}
	if len(tr.Sources) > 0 {
		out.Sources = make(map[string]int, len(tr.Sources))
		for k, n := range tr.Sources {
			out.Sources[k] = n
		}
	}
	return out
}

// DeriveTrack replays a vessel's stored samples (time-ordered) through a
// fresh fusion.Tracker and returns the resulting track state — the
// offline equivalent of the online stage's AIS path (identity-bound
// measurements always reach their track, so gaps in the history never
// lose state, online or offline). Nil when the history is empty.
func DeriveTrack(mmsi uint32, pts []model.VesselState) *TrackState {
	if len(pts) == 0 {
		return nil
	}
	tk := fusion.NewTracker(fusion.DefaultTrackerConfig())
	for _, p := range pts {
		tk.Process(p.At, []fusion.Measurement{AISMeasurement(p)})
	}
	for _, tr := range tk.Tracks {
		if tr.Identity == mmsi {
			return TrackStateOf(tr)
		}
	}
	return nil
}

// PredictFrom forecasts from a vessel's samples (time-ordered) using a
// route prior with dead-reckoning fallback (forecast.Hybrid's policy,
// inlined so the answering predictor is named in the result). route may
// be nil — pure dead reckoning. Nil when the history is empty.
func PredictFrom(mmsi uint32, pts []model.VesselState, horizon time.Duration, route *forecast.RouteModel) *Prediction {
	if len(pts) == 0 {
		return nil
	}
	tr := &model.Trajectory{MMSI: mmsi, Points: pts}
	last := pts[len(pts)-1]
	var (
		pos    geo.Point
		ok     bool
		method string
	)
	if route != nil {
		if p, hit := route.Predict(tr, horizon); hit {
			pos, ok, method = p, true, route.Name()
		}
	}
	if !ok {
		if pos, ok = (forecast.DeadReckoning{}).Predict(tr, horizon); !ok {
			return nil
		}
		method = forecast.DeadReckoning{}.Name()
	}
	return &Prediction{
		MMSI: mmsi, From: last.At, At: last.At.Add(horizon),
		Horizon: Duration(horizon), Lat: pos.Lat, Lon: pos.Lon,
		Method: method, ConfidenceM: coastedUncertaintyM(pts, horizon),
	}
}

// coastedUncertaintyM replays a constant-velocity filter over the recent
// window and coasts it over the horizon: the 1-sigma envelope a
// measurement-starved tracker would report at the target instant.
func coastedUncertaintyM(pts []model.VesselState, horizon time.Duration) float64 {
	last := pts[len(pts)-1]
	start := last.At.Add(-predictConfWindow)
	var k *fusion.KalmanCV
	for _, p := range pts {
		if p.At.Before(start) {
			continue
		}
		if k == nil {
			k = fusion.NewKalmanCV(p.Pos, fusion.DefaultTrackerConfig().ProcessNoise)
			k.Init(p.At, p.Pos, AISPositionSigmaM)
			continue
		}
		k.Predict(p.At)
		k.Update(p.Pos, AISPositionSigmaM)
	}
	k.Predict(last.At.Add(horizon))
	return k.PositionUncertaintyM()
}

// DerivePredict forecasts from a vessel's stored samples alone: a route
// model trained on that single trajectory (the vessel's own habit),
// dead reckoning where it abstains. The online stage is richer — its
// shard-shared route model has seen every vessel's lanes.
func DerivePredict(mmsi uint32, pts []model.VesselState, horizon time.Duration) *Prediction {
	if len(pts) == 0 {
		return nil
	}
	rm := forecast.NewRouteModel(RouteCellDeg)
	rm.Train(&model.Trajectory{MMSI: mmsi, Points: pts})
	return PredictFrom(mmsi, pts, horizon, rm)
}

// QualityAccumulator folds one vessel's sample stream into an integrity
// score: each sample runs the kinematic checks and lands as a clean or
// flagged observation in a Beta-Bernoulli reliability estimate (the
// same prior and update core.Pipeline's quality.Profile applies per
// vessel, held inline here — the online stage pays this per archived
// record, so the fold must not hash a subject key every sample). The
// online stage keeps one per vessel; DeriveQuality replays a stored
// history through one — the same fold either way, so online and
// replayed scores agree exactly.
type QualityAccumulator struct {
	mmsi    uint32
	kc      quality.KinematicChecker
	beta    uncertainty.Beta
	checked int
	flagged int
	issues  map[string]int
}

// NewQualityAccumulator returns an empty accumulator for one vessel.
func NewQualityAccumulator(mmsi uint32) *QualityAccumulator {
	return &QualityAccumulator{
		mmsi: mmsi,
		// The score keeps rule counts, not prose, so skip note formatting —
		// on a defect-heavy feed the Sprintf would otherwise dominate the
		// online stage's per-record cost.
		kc:   quality.KinematicChecker{SkipNotes: true},
		beta: uncertainty.NewBeta(),
	}
}

// Observe folds in the vessel's next sample (time order, like the feed).
func (q *QualityAccumulator) Observe(s model.VesselState) {
	issues := q.kc.Check(s)
	q.checked++
	if len(issues) > 0 {
		q.flagged++
		if q.issues == nil {
			q.issues = make(map[string]int)
		}
		for _, is := range issues {
			q.issues[is.Rule]++
		}
		q.beta = q.beta.Observe(0, 1)
	} else {
		q.beta = q.beta.Observe(1, 0)
	}
}

// Score renders the accumulated profile; nil before any observation.
func (q *QualityAccumulator) Score() *QualityScore {
	if q.checked == 0 {
		return nil
	}
	mean, lower := q.beta.Mean(), q.beta.LowerBound(2)
	s := &QualityScore{
		MMSI: q.mmsi, Reliability: mean, LowerBound: lower,
		Checked: q.checked, Flagged: q.flagged,
	}
	if len(q.issues) > 0 {
		s.Issues = make(map[string]int, len(q.issues))
		for k, n := range q.issues {
			s.Issues[k] = n
		}
	}
	return s
}

// DeriveQuality replays a vessel's stored samples through the kinematic
// checks and Beta-Bernoulli profile. Nil when the history is empty.
func DeriveQuality(mmsi uint32, pts []model.VesselState) *QualityScore {
	if len(pts) == 0 {
		return nil
	}
	acc := NewQualityAccumulator(mmsi)
	for _, p := range pts {
		acc.Observe(p)
	}
	return acc.Score()
}
