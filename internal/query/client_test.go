package query

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tstore"
)

// flakyTransport fails the first `failures` round trips with a transport
// error, then delegates — a connection that comes back after a blip.
type flakyTransport struct {
	failures int32
	attempts atomic.Int32
	next     http.RoundTripper
}

var errBlip = errors.New("connection refused (simulated)")

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	n := f.attempts.Add(1)
	if n <= atomic.LoadInt32(&f.failures) {
		return nil, errBlip
	}
	return f.next.RoundTrip(r)
}

func retryServer(t *testing.T) *httptest.Server {
	t.Helper()
	st := fill(tstore.New(), testStates(2, 5))
	ts := httptest.NewServer(NewServer(NewEngine(NewStoreSource("archive", st))))
	t.Cleanup(ts.Close)
	return ts
}

func TestClientRetriesTransientErrors(t *testing.T) {
	ts := retryServer(t)
	ft := &flakyTransport{failures: 2, next: http.DefaultTransport}
	c := NewClient(ts.URL)
	c.HTTP = &http.Client{Transport: ft}
	c.Retry = RetryPolicy{Max: 3, BaseDelay: time.Millisecond}
	res, err := c.Query(Request{Kind: KindStats})
	if err != nil {
		t.Fatalf("query should survive two transport blips: %v", err)
	}
	if res.Stats.Points != 10 {
		t.Fatalf("retried answer wrong: %d points", res.Stats.Points)
	}
	if got := ft.attempts.Load(); got != 3 {
		t.Fatalf("made %d attempts, want 3 (2 failures + success)", got)
	}
}

func TestClientRetryBudgetExhausts(t *testing.T) {
	ts := retryServer(t)
	ft := &flakyTransport{failures: 1 << 30, next: http.DefaultTransport}
	c := NewClient(ts.URL)
	c.HTTP = &http.Client{Transport: ft}
	c.Retry = RetryPolicy{Max: 2, BaseDelay: time.Millisecond}
	_, err := c.Query(Request{Kind: KindStats})
	if err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("want the transport error after exhaustion, got %v", err)
	}
	if got := ft.attempts.Load(); got != 3 {
		t.Fatalf("made %d attempts, want 3 (first + 2 retries)", got)
	}
}

func TestClientNeverRetriesServerErrors(t *testing.T) {
	// The server answering — even with an error status — is not
	// transient: retrying would double-execute or just double the load.
	var hits atomic.Int32
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeError(w, http.StatusBadRequest, errors.New("spacetime requires box"))
	}))
	defer counting.Close()
	c := NewClient(counting.URL)
	c.Retry = RetryPolicy{Max: 5, BaseDelay: time.Millisecond}
	_, err := c.Query(Request{Kind: KindSpaceTime})
	if err == nil || !strings.Contains(err.Error(), "requires box") {
		t.Fatalf("want the server's error verbatim, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server hit %d times, want exactly 1 (no retry on HTTP errors)", got)
	}
}

func TestClientContextCancelsRetryLoop(t *testing.T) {
	ft := &flakyTransport{failures: 1 << 30, next: http.DefaultTransport}
	c := NewClient("localhost:1") // never reached: transport always fails
	c.HTTP = &http.Client{Transport: ft}
	c.Retry = RetryPolicy{Max: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.QueryContext(ctx, Request{Kind: KindStats})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v — the backoff loop ignored the context", elapsed)
	}
	if got := ft.attempts.Load(); got > 3 {
		t.Fatalf("%d attempts after early cancel — retries outlived the context", got)
	}
}

func TestClientContextBoundsTheRequestItself(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hold the request open until the client gives up
		case <-r.Context().Done():
		case <-time.After(time.Second): // keep Close from hanging on this conn
		}
	}))
	defer stall.Close()
	c := NewClient(stall.URL)
	c.HTTP = &http.Client{} // no client-level timeout: the context must cut it
	c.Retry = RetryPolicy{} // and no retries: a deadline error is final
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.QueryContext(ctx, Request{Kind: KindStats})
	if err == nil {
		t.Fatal("want a deadline error from a stalled server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline ignored: query returned after %v", elapsed)
	}
}

func TestRetryPolicyBackoffShape(t *testing.T) {
	p := RetryPolicy{Max: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := p.delay(i); got != w {
			t.Fatalf("delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.delay(200); got != time.Second { // shift overflow clamps to the cap
		t.Fatalf("overflowing attempt: %v, want 1s", got)
	}
	zero := RetryPolicy{}
	if zero.delay(0) != 100*time.Millisecond || zero.delay(10) != 2*time.Second {
		t.Fatalf("zero-policy defaults wrong: %v, %v", zero.delay(0), zero.delay(10))
	}
}
