// Behavioral anomalies: the per-vessel deviation kind — a sliding-window
// distribution-shift score over speed/heading/position (the unsupervised
// behavior-change blueprint of Petry et al.), reporting-gap counts and
// the vessel's recent stop/move episodes — plus the fleet-ranked form of
// the same read.
//
// Like the track-intelligence kinds, a Source that maintains live
// per-vessel profiles (the ingest engine's internal/anomaly stage, a
// federation peer) implements AnomalySource and answers directly; every
// other source is answered by replaying its stored trajectory through
// the same AnomalyAccumulator fold (DeriveAnomalies). The fold is a pure
// function of the point sequence — fixed bin layouts, fixed thresholds
// (the package constants below, not a config), no wall clock — so online
// and replayed answers are byte-identical, and a tiered store that
// evicted and paged a vessel back answers exactly like one that never
// evicted it (pinned by TestQueryEquivalenceUnderEviction).
package query

import (
	"math"
	"sort"
	"time"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/semstore"
)

// Anomaly-fold tuning shared by the online stage and the offline replay.
// These are constants, not configuration: DeriveAnomalies has no config
// parameter, so anything tunable here would break the online==offline
// equivalence the kind is pinned to. Episode thresholds come from
// semstore.DefaultEpisodeConfig() for the same reason.
const (
	// AnomalyGapThreshold is the silence that counts as a reporting gap —
	// the same threshold the offline open-world sweep (E13) qualifies
	// rendezvous candidates with.
	AnomalyGapThreshold = 10 * time.Minute
	// AnomalyWindow is the sliding-window length (samples) the shift
	// score compares against the vessel's full history: with fewer
	// samples than this the window is the history and every shift is 0.
	AnomalyWindow = 32
	// AnomalyRecentEpisodes bounds the closed stop/move episodes a
	// vessel's report retains (oldest dropped first).
	AnomalyRecentEpisodes = 8
	// DefaultAnomalyLimit caps a ranked-anomalies answer when the request
	// does not set Limit.
	DefaultAnomalyLimit = 10

	// Histogram layout of the behavior profile: 16 speed bins of 2 kn
	// (30+ kn clamps into the last), 16 heading sectors of 22.5°, and
	// position cells of RouteCellDeg (≈5.5 km) — coarse on purpose; the
	// score watches distribution shift, not exact kinematics.
	anomalySpeedBins  = 16
	anomalySpeedBinKn = 2.0
	anomalyHeadBins   = 16
)

// AnomalySource is the optional Source extension for the anomalies kind.
// Sources that maintain (or can fetch) live behavior profiles answer
// directly — the engine takes an implementation's answer as
// authoritative, nil/empty included. Sources without it are answered by
// replaying their stored trajectories (DeriveAnomalies).
type AnomalySource interface {
	// VesselAnomaly returns one vessel's deviation report, or ok=false
	// when the vessel is unknown.
	VesselAnomaly(mmsi uint32) (*VesselAnomaly, bool)
	// RankedAnomalies returns the fleet ordered by deviation score
	// (descending, MMSI ascending on ties), at most limit entries
	// (unlimited when limit <= 0); ok=false when the source cannot
	// answer (a degraded peer).
	RankedAnomalies(limit int) ([]VesselAnomaly, bool)
}

// EpisodeInfo is the wire form of one stop/move episode: the semstore
// segmentation (activity by speed thresholds, centroid, mean speed)
// without zone annotation — the fold is zone-free so replays never
// depend on which zone set a daemon loaded.
type EpisodeInfo struct {
	Activity   string    `json:"activity"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
	Lat        float64   `json:"lat"`
	Lon        float64   `json:"lon"`
	AvgSpeedKn float64   `json:"avg_speed_kn"`
}

// GapInfo is the wire form of one reporting gap (silence longer than
// AnomalyGapThreshold between consecutive samples).
type GapInfo struct {
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Duration Duration  `json:"duration"`
}

// VesselAnomaly is the wire form of one vessel's deviation report: the
// per-dimension distribution shifts of its recent window against its
// full history (0 = behaving like itself, 1 = disjoint distributions),
// their mean as the headline Score, reporting-gap bookkeeping and the
// recent episode timeline.
type VesselAnomaly struct {
	MMSI    uint32    `json:"mmsi"`
	At      time.Time `json:"at"` // last sample folded
	Samples int       `json:"samples"`

	// Score is the mean of the three per-dimension shifts.
	Score         float64 `json:"score"`
	SpeedShift    float64 `json:"speed_shift"`
	HeadingShift  float64 `json:"heading_shift"`
	PositionShift float64 `json:"position_shift"`

	// Gaps counts reporting gaps seen so far; LastGap is the most recent.
	Gaps    int      `json:"gaps,omitempty"`
	LastGap *GapInfo `json:"last_gap,omitempty"`

	// Episodes are the vessel's most recent closed stop/move episodes
	// (oldest first, at most AnomalyRecentEpisodes, each at least
	// MinDuration long — exactly the episodes the batch segmenter
	// emits). Current is the in-progress episode, ending provisionally
	// at the last sample; it graduates into Episodes only if it reaches
	// MinDuration by the time the activity changes.
	Episodes []EpisodeInfo `json:"episodes,omitempty"`
	Current  *EpisodeInfo  `json:"current,omitempty"`
}

// AnomalyReport is the anomalies-kind payload: the per-vessel form when
// the request named an MMSI, the fleet-ranked form otherwise.
type AnomalyReport struct {
	Vessel *VesselAnomaly  `json:"vessel,omitempty"`
	Ranked []VesselAnomaly `json:"ranked,omitempty"`
}

// episodeInfoOf renders a semstore episode into its wire form.
func episodeInfoOf(e semstore.Episode) EpisodeInfo {
	return EpisodeInfo{
		Activity: string(e.Activity), Start: e.Start, End: e.End,
		Lat: e.Centroid.Lat, Lon: e.Centroid.Lon, AvgSpeedKn: e.AvgSpeed,
	}
}

// posCell is a coarse position-histogram cell (RouteCellDeg grid).
type posCell struct{ lat, lon int32 }

func cellOf(lat, lon float64) posCell {
	return posCell{
		lat: int32(floorDiv(lat, RouteCellDeg)),
		lon: int32(floorDiv(lon, RouteCellDeg)),
	}
}

func floorDiv(v, cell float64) int {
	return int(math.Floor(v / cell))
}

func speedBinOf(kn float64) int {
	if kn <= 0 {
		return 0
	}
	b := int(kn / anomalySpeedBinKn)
	if b >= anomalySpeedBins {
		b = anomalySpeedBins - 1
	}
	return b
}

func headBinOf(deg float64) int {
	d := deg
	for d < 0 {
		d += 360
	}
	for d >= 360 {
		d -= 360
	}
	b := int(d / (360.0 / anomalyHeadBins))
	if b >= anomalyHeadBins {
		b = anomalyHeadBins - 1
	}
	return b
}

// winSample is one window entry: the three bin coordinates of a sample.
type winSample struct {
	speed int8
	head  int8
	cell  posCell
}

// AnomalyAccumulator folds one vessel's sample stream into a behavior
// profile: long-run histograms over speed/heading/position, a sliding
// window of the last AnomalyWindow samples, an incremental stop/move
// episode segmenter that agrees with semstore.SegmentEpisodes (zone-free;
// pinned by TestAccumulatorMatchesBatchSegmenter), and a reporting-gap
// detector with FindGaps semantics (a gap is recognised when the first
// sample after the silence arrives). The online stage keeps one per
// vessel; DeriveAnomalies replays a stored history through one — the same
// fold either way, so online and replayed reports agree exactly.
type AnomalyAccumulator struct {
	mmsi    uint32
	epCfg   semstore.EpisodeConfig
	samples int
	last    model.VesselState

	speedBase [anomalySpeedBins]int
	headBase  [anomalyHeadBins]int
	posBase   map[posCell]int

	win     []winSample // ring of the last AnomalyWindow samples
	winHead int

	gaps    int
	lastGap events.Gap

	// In-progress episode (semstore.SegmentEpisodes state, inlined).
	cur                    semstore.Episode
	curLat, curLon, curSpd float64
	curN                   int
	closed                 []semstore.Episode // ring, cap AnomalyRecentEpisodes
}

// NewAnomalyAccumulator returns an empty accumulator for one vessel.
func NewAnomalyAccumulator(mmsi uint32) *AnomalyAccumulator {
	return &AnomalyAccumulator{
		mmsi:    mmsi,
		epCfg:   semstore.DefaultEpisodeConfig(),
		posBase: make(map[posCell]int),
		win:     make([]winSample, 0, AnomalyWindow),
	}
}

func (a *AnomalyAccumulator) classify(s model.VesselState) semstore.Activity {
	switch {
	case s.SpeedKn <= a.epCfg.StopSpeedKn:
		return semstore.ActivityAnchored
	case s.SpeedKn <= a.epCfg.SlowSpeedKn:
		return semstore.ActivitySlowMove
	default:
		return semstore.ActivityUnderway
	}
}

// flushEpisode closes the in-progress episode at end, keeping it (and
// returning it) only when it reaches MinDuration — exactly the batch
// segmenter's filter. The accumulator retains the most recent
// AnomalyRecentEpisodes closed episodes.
func (a *AnomalyAccumulator) flushEpisode(end time.Time) (semstore.Episode, bool) {
	a.cur.End = end
	if a.curN > 0 {
		a.cur.Centroid.Lat = a.curLat / float64(a.curN)
		a.cur.Centroid.Lon = a.curLon / float64(a.curN)
		a.cur.AvgSpeed = a.curSpd / float64(a.curN)
	}
	a.curLat, a.curLon, a.curSpd, a.curN = 0, 0, 0, 0
	if a.cur.End.Sub(a.cur.Start) < a.epCfg.MinDuration {
		return semstore.Episode{}, false
	}
	e := a.cur
	if len(a.closed) == AnomalyRecentEpisodes {
		copy(a.closed, a.closed[1:])
		a.closed[len(a.closed)-1] = e
	} else {
		a.closed = append(a.closed, e)
	}
	return e, true
}

// Observe folds in the vessel's next sample (time order, like the feed).
// It reports the stream facts the sample completed, for callers that act
// on them (the online stage materialises closed episodes into semstore
// and feeds gaps to the rendezvous matcher): a stop/move episode closed
// by an activity change, and a reporting gap ended by this sample. Both
// are nil on the vast majority of samples.
func (a *AnomalyAccumulator) Observe(s model.VesselState) (closed *semstore.Episode, gap *events.Gap) {
	// Gap detection (FindGaps semantics: recognised at the first sample
	// after the silence).
	if a.samples > 0 && s.At.Sub(a.last.At) > AnomalyGapThreshold {
		a.gaps++
		a.lastGap = events.Gap{MMSI: a.mmsi, Before: a.last, After: s}
		g := a.lastGap
		gap = &g
	}
	// Episode segmentation (semstore.SegmentEpisodes, incremental).
	act := a.classify(s)
	if a.samples == 0 {
		a.cur = semstore.Episode{MMSI: a.mmsi, Activity: act, Start: s.At}
	} else if act != a.cur.Activity {
		if e, ok := a.flushEpisode(s.At); ok {
			closed = &e
		}
		a.cur = semstore.Episode{MMSI: a.mmsi, Activity: act, Start: s.At}
	}
	a.curLat += s.Pos.Lat
	a.curLon += s.Pos.Lon
	a.curSpd += s.SpeedKn
	a.curN++
	// Behavior histograms.
	w := winSample{
		speed: int8(speedBinOf(s.SpeedKn)),
		head:  int8(headBinOf(s.CourseDeg)),
		cell:  cellOf(s.Pos.Lat, s.Pos.Lon),
	}
	a.speedBase[w.speed]++
	a.headBase[w.head]++
	a.posBase[w.cell]++
	if len(a.win) < cap(a.win) {
		a.win = append(a.win, w)
	} else {
		a.win[a.winHead] = w
		a.winHead = (a.winHead + 1) % len(a.win)
	}
	a.last = s
	a.samples++
	return closed, gap
}

// tv is half the L1 distance between the baseline distribution (counts
// base over total n) and the window distribution (counts win over total
// wn): 0 when the window is distributed like the history, 1 when they
// are disjoint. Iteration order is the caller's — it must be fixed
// (array order, sorted keys) for the float sum to be deterministic.
func tvAccum(base, win, n, wn int, acc *float64) {
	d := float64(base)/float64(n) - float64(win)/float64(wn)
	if d < 0 {
		d = -d
	}
	*acc += d
}

// shifts computes the three per-dimension total-variation shift scores.
func (a *AnomalyAccumulator) shifts() (speed, head, pos float64) {
	n, wn := a.samples, len(a.win)
	if n == 0 || wn == 0 {
		return 0, 0, 0
	}
	var speedWin [anomalySpeedBins]int
	var headWin [anomalyHeadBins]int
	posWin := make(map[posCell]int, wn)
	for _, w := range a.win {
		speedWin[w.speed]++
		headWin[w.head]++
		posWin[w.cell]++
	}
	for i := range a.speedBase {
		tvAccum(a.speedBase[i], speedWin[i], n, wn, &speed)
	}
	for i := range a.headBase {
		tvAccum(a.headBase[i], headWin[i], n, wn, &head)
	}
	// Window cells are a subset of baseline cells (every window sample is
	// also in the baseline), so iterating the baseline covers the union —
	// sorted, so the float sum is replay-deterministic.
	cells := make([]posCell, 0, len(a.posBase))
	for c := range a.posBase {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].lat != cells[j].lat {
			return cells[i].lat < cells[j].lat
		}
		return cells[i].lon < cells[j].lon
	})
	for _, c := range cells {
		tvAccum(a.posBase[c], posWin[c], n, wn, &pos)
	}
	return speed / 2, head / 2, pos / 2
}

// Report renders the accumulated profile; nil before any observation.
func (a *AnomalyAccumulator) Report() *VesselAnomaly {
	if a.samples == 0 {
		return nil
	}
	speed, head, pos := a.shifts()
	va := &VesselAnomaly{
		MMSI: a.mmsi, At: a.last.At, Samples: a.samples,
		Score:      (speed + head + pos) / 3,
		SpeedShift: speed, HeadingShift: head, PositionShift: pos,
		Gaps: a.gaps,
	}
	if a.gaps > 0 {
		va.LastGap = &GapInfo{
			Start: a.lastGap.Before.At, End: a.lastGap.After.At,
			Duration: Duration(a.lastGap.Duration()),
		}
	}
	for _, e := range a.closed {
		va.Episodes = append(va.Episodes, episodeInfoOf(e))
	}
	// The open episode, rendered without disturbing the fold state: end
	// and centroid are provisional as of the last sample.
	cur := semstore.Episode{
		MMSI: a.mmsi, Activity: a.cur.Activity, Start: a.cur.Start, End: a.last.At,
	}
	if a.curN > 0 {
		cur.Centroid.Lat = a.curLat / float64(a.curN)
		cur.Centroid.Lon = a.curLon / float64(a.curN)
		cur.AvgSpeed = a.curSpd / float64(a.curN)
	}
	ci := episodeInfoOf(cur)
	va.Current = &ci
	return va
}

// LastGap returns the most recent reporting gap, if any — the online
// stage's rendezvous matcher seed for vessels already dark at attach.
func (a *AnomalyAccumulator) LastGap() (events.Gap, bool) {
	return a.lastGap, a.gaps > 0
}

// DeriveAnomalies replays a vessel's stored samples (time-ordered)
// through a fresh accumulator — the offline equivalent of the online
// stage's fold. Nil when the history is empty.
func DeriveAnomalies(mmsi uint32, pts []model.VesselState) *VesselAnomaly {
	if len(pts) == 0 {
		return nil
	}
	acc := NewAnomalyAccumulator(mmsi)
	for _, p := range pts {
		acc.Observe(p)
	}
	return acc.Report()
}

// DeriveRankedAnomalies answers the fleet-ranked form from a plain
// source: every known vessel's history replayed through the fold, sorted
// by score (descending; MMSI breaks ties), truncated to limit when
// limit > 0.
func DeriveRankedAnomalies(s Source, limit int) []VesselAnomaly {
	var out []VesselAnomaly
	for _, mmsi := range s.DistinctMMSI() {
		if va := DeriveAnomalies(mmsi, fullHistory(s, mmsi)); va != nil {
			out = append(out, *va)
		}
	}
	SortRankedAnomalies(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// SortRankedAnomalies orders a ranked answer: score descending, MMSI
// ascending on ties — the one deterministic order every producer of the
// ranked form (stage, derive, engine merge) must agree on.
func SortRankedAnomalies(out []VesselAnomaly) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score > out[j].Score {
			return true
		}
		if out[i].Score < out[j].Score {
			return false
		}
		return out[i].MMSI < out[j].MMSI
	})
}
