package query

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/stream"
)

// This file is the continuous half of the query surface: the same typed
// Request that answers a one-shot read becomes a standing query whose
// incremental results are pushed to the subscriber. A Hub fans published
// vessel states and alerts out to bounded per-subscriber queues (a slow
// consumer drops updates — counted, never blocking the publisher), keeps
// a replay ring so a reconnecting subscriber can resume from its last
// sequence number, and a Streamer adds the kinds a pure pub/sub cannot
// serve (the periodic situation ticker). The HTTP form is /v1/stream
// (stream_http.go); Client.Subscribe is the remote peer (client.go).

// UpdateKind discriminates the payload of a pushed Update.
type UpdateKind string

// The update kinds a subscription delivers.
const (
	// UpdateState carries one newly archived vessel state.
	UpdateState UpdateKind = "state"
	// UpdateAlert carries one newly recognised alert.
	UpdateAlert UpdateKind = "alert"
	// UpdateSituation carries a periodically assembled situation picture
	// (KindSituation subscriptions only).
	UpdateSituation UpdateKind = "situation"
	// UpdateTrack carries a periodically re-read fused track state
	// (KindTrack subscriptions only).
	UpdateTrack UpdateKind = "track"
	// UpdatePredict carries a periodically recomputed position forecast
	// (KindPredict subscriptions only) — between AIS reports the envelope
	// grows and the position dead-reckons forward.
	UpdatePredict UpdateKind = "predict"
	// UpdateQuality carries a periodically re-read integrity score
	// (KindQuality subscriptions only).
	UpdateQuality UpdateKind = "quality"
	// UpdateAnomalies carries a periodically recomputed deviation report
	// (KindAnomalies subscriptions only) — per-vessel with MMSI set, the
	// fleet ranking otherwise, so a client watches "vessels deviating
	// from their own history" as a standing query.
	UpdateAnomalies UpdateKind = "anomalies"
	// UpdateHeartbeat is a keep-alive: no payload, but Seq acknowledges
	// the subscriber's position and Dropped surfaces queue overflow. The
	// HTTP stream emits them; in-process subscriptions do not need them.
	UpdateHeartbeat UpdateKind = "heartbeat"
	// UpdateError terminates an HTTP stream: the subscription failed
	// server-side (Error says why) and will not resume. The client
	// absorbs it into Subscription.Err.
	UpdateError UpdateKind = "error"
	// UpdateRewound marks a resume that crossed a daemon epoch: the
	// server restarted (or the reconnect landed on a different daemon),
	// so the old cursor is meaningless — the client reset it and the
	// stream continues live-only from Seq in the new epoch. Whatever the
	// previous daemon retained but had not delivered is gone; the
	// subscriber sees the discontinuity instead of silently missing it.
	// Counted in Subscription.Rewound.
	UpdateRewound UpdateKind = "rewound"
)

// Update is one pushed increment of a standing query. Seq is the hub's
// global publication sequence — strictly increasing across every update a
// subscription delivers, so "resume from the last Seq I saw" is always
// well defined. (Situation tickers are the exception: their pictures are
// recomputed, not replayed, so Seq counts that subscription's ticks.)
//
// Sequences are per daemon epoch: a daemon restart (or a reconnect
// routed to a different daemon) starts a new sequence space under a new
// epoch nonce. Heartbeats stamp the epoch, so a client resuming with a
// cursor from a previous epoch detects the change, resets its cursor and
// surfaces an UpdateRewound instead of silently continuing live-only.
type Update struct {
	Seq  uint64     `json:"seq"`
	Kind UpdateKind `json:"kind"`

	State     *State     `json:"state,omitempty"`
	Alert     *Alert     `json:"alert,omitempty"`
	Situation *Situation `json:"situation,omitempty"`

	// Ticker payloads of the track-intelligence kinds.
	Track      *TrackState   `json:"track,omitempty"`
	Prediction *Prediction   `json:"prediction,omitempty"`
	Quality    *QualityScore `json:"quality,omitempty"`

	// Anomalies is the ticker payload of KindAnomalies subscriptions.
	Anomalies *AnomalyReport `json:"anomalies,omitempty"`

	// Dropped (heartbeats only) is the number of updates this
	// subscription has lost to queue overflow so far.
	Dropped uint64 `json:"dropped,omitempty"`

	// Epoch (heartbeats and rewound markers) identifies the daemon
	// instance whose sequence space Seq lives in: a random nonce drawn
	// at hub construction, stable for the daemon's lifetime.
	Epoch uint64 `json:"epoch,omitempty"`

	// Error (UpdateError only) is the server-side failure that ended the
	// stream.
	Error string `json:"error,omitempty"`
}

// SubOptions tunes one subscription. The zero value is usable.
type SubOptions struct {
	// Buffer bounds the subscriber's queue (default HubConfig.Buffer).
	// When the queue is full, new updates are dropped for this subscriber
	// and counted — a slow consumer never blocks the publisher.
	Buffer int
	// FromSeq resumes the subscription: updates still retained in the
	// hub's replay ring with Seq > FromSeq are delivered first, then the
	// live stream continues. 0 subscribes from "now" — unless Resume is
	// set. Replay is best-effort: updates older than the ring are gone
	// (compare the first delivered Seq with FromSeq+1 to detect the gap).
	FromSeq uint64
	// Resume marks FromSeq as an authoritative cursor even at 0: a
	// subscriber that attached at sequence 0 and lost its stream before
	// receiving anything still wants everything retained, not "from
	// now". Client reconnects set it; fresh subscriptions leave it off.
	Resume bool
	// Heartbeat is the keep-alive cadence of the HTTP stream (default
	// 15s, minimum 100ms). In-process subscriptions ignore it.
	Heartbeat time.Duration
	// Tick is the recompute cadence of the ticker kinds — situation,
	// track, predict, quality — (default 2s, minimum 10ms). Other kinds
	// ignore it.
	Tick time.Duration
}

func (o SubOptions) heartbeat() time.Duration {
	switch {
	case o.Heartbeat <= 0:
		return 15 * time.Second
	case o.Heartbeat < 100*time.Millisecond:
		return 100 * time.Millisecond
	}
	return o.Heartbeat
}

func (o SubOptions) tick() time.Duration {
	switch {
	case o.Tick <= 0:
		return 2 * time.Second
	case o.Tick < 10*time.Millisecond:
		return 10 * time.Millisecond
	}
	return o.Tick
}

// Subscriber turns a Request into a standing query. Implementations:
// Hub (state/alert kinds), Streamer (adds situation tickers), the ingest
// engine (its hub + query engine), and Client (a remote daemon's hub over
// /v1/stream) — the push half of the Executor contract.
type Subscriber interface {
	Subscribe(req Request, opt SubOptions) (*Subscription, error)
}

// Subscription is one standing query. Read Updates until it closes; the
// channel closes after Cancel, or — for remote subscriptions — once the
// connection is lost beyond the client's retry budget (Err then reports
// why). Dropped counts updates lost to this subscriber's bounded queue.
type Subscription struct {
	req      Request
	ch       chan Update
	startSeq uint64
	epoch    atomic.Uint64 // serving daemon's epoch (updated across remote resumes)

	delivered atomic.Uint64
	dropped   atomic.Uint64
	rewinds   atomic.Uint64

	filter func(*Update) bool // hub-side match; nil for remote/ticker subs
	flight *obs.Flight        // hub's flight recorder; nil when unset

	cancelOnce sync.Once
	stop       func()

	errMu sync.Mutex
	err   error
}

// Updates is the push channel of the standing query.
func (s *Subscription) Updates() <-chan Update { return s.ch }

// Request returns the standing request.
func (s *Subscription) Request() Request { return s.req }

// StartSeq is the hub sequence at subscribe time: every update with a
// larger Seq is either delivered or counted in Dropped.
func (s *Subscription) StartSeq() uint64 { return s.startSeq }

// Epoch is the serving daemon's epoch nonce (the sequence space Seq
// lives in). For remote subscriptions it tracks the daemon currently
// serving the stream, so it changes when a resume crosses a restart.
func (s *Subscription) Epoch() uint64 { return s.epoch.Load() }

// Rewound counts the resumes that crossed a daemon epoch: each one reset
// the cursor (replay impossible — the retention belonged to the previous
// epoch) and delivered an UpdateRewound marker. Always 0 for in-process
// subscriptions.
func (s *Subscription) Rewound() uint64 { return s.rewinds.Load() }

// Delivered counts updates enqueued to this subscription.
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Dropped counts updates lost to this subscription's full queue. For
// remote subscriptions it accumulates the server-side counts carried by
// heartbeats across reconnects, which makes it an upper bound: an
// update dropped from the queue and later recovered by ring replay on
// resume stays counted, even though it was ultimately delivered.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel ends the standing query; Updates closes soon after. Safe to call
// more than once and concurrently with delivery.
func (s *Subscription) Cancel() { s.cancelOnce.Do(s.stop) }

// Err reports why a subscription ended, if it ended abnormally (a remote
// stream lost beyond the retry budget). Nil after a plain Cancel.
func (s *Subscription) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *Subscription) setErr(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// offer delivers u if it matches the subscription, without ever blocking:
// a full queue drops the update and counts it.
func (s *Subscription) offer(u Update, hub *stream.Metrics) {
	if s.filter != nil && !s.filter(&u) {
		return
	}
	select {
	case s.ch <- u:
		s.delivered.Add(1)
		if hub != nil {
			hub.Out.Add(1)
		}
	default:
		n := s.dropped.Add(1)
		if hub != nil {
			hub.Dropped.Add(1)
		}
		// First drop is the incident signal; after that, one event per
		// 1024 keeps a sustained overflow visible without flooding the
		// ring with its own symptom.
		if n == 1 || n%1024 == 0 {
			s.flight.Record(obs.FlightWarn, "hub", "subscriber dropping updates",
				obs.FS("kind", string(s.req.Kind)), obs.FI("dropped", int64(n)))
		}
	}
}

// HubConfig parameterises a Hub. The zero value is usable.
type HubConfig struct {
	// Replay is the capacity of the resume ring (default 4096 updates).
	Replay int
	// Buffer is the default per-subscriber queue bound (default 256).
	Buffer int
}

func (c *HubConfig) normalize() {
	if c.Replay < 1 {
		c.Replay = 4096
	}
	if c.Buffer < 1 {
		c.Buffer = 256
	}
}

// Hub is the pub/sub core of the subscription surface: publishers push
// vessel states and alerts, subscribers receive the subset matching their
// standing Request through bounded queues. Publication is cheap while
// nothing has ever subscribed (one atomic load), so an ingest path can
// publish unconditionally.
//
// Hub implements tstore.Sink, so attaching it to a store (optionally
// tee'd with a persistence flusher) publishes exactly the records that
// reach the archive — the set a one-shot replay of the same request
// returns, which is what makes a subscription equivalent to its
// point-in-time twin.
type Hub struct {
	cfg   HubConfig
	epoch uint64 // random instance nonce stamped on heartbeats

	// Metrics counts publications (In), enqueued deliveries across all
	// subscribers (Out) and slow-consumer drops (Dropped).
	Metrics stream.Metrics

	// armed is set on first Subscribe and deliberately never cleared:
	// retention must continue while a subscriber is disconnected (zero
	// live subscriptions) or there would be nothing to replay when it
	// resumes — the cost is one wire conversion + mutexed ring write per
	// archived record after the first subscriber ever appears.
	armed atomic.Bool

	// flight, when attached (SetFlight), receives subscriber-drop
	// transitions — the ordered record of *when* a consumer fell behind.
	flight atomic.Pointer[obs.Flight]

	mu   sync.Mutex
	seq  uint64
	ring []Update // replay ring, len == cfg.Replay once armed
	subs map[*Subscription]struct{}

	// pubNS, set by Instrument before the hub sees traffic, samples the
	// cost of one publication (ring write + fan-out) every 64th publish.
	pubNS *obs.Histogram
}

// NewHub builds a hub with a fresh epoch nonce.
func NewHub(cfg HubConfig) *Hub {
	cfg.normalize()
	return &Hub{cfg: cfg, epoch: newEpoch(), subs: make(map[*Subscription]struct{})}
}

// newEpoch draws the random daemon-instance nonce sequence spaces are
// scoped by. Zero is reserved for "unknown" (pre-epoch peers), so it is
// never returned.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	if e := binary.LittleEndian.Uint64(b[:]); e != 0 {
		return e
	}
	return 1
}

// SetFlight attaches a flight recorder: subscriptions created after the
// call record their drop transitions into it. Safe on a live hub.
func (h *Hub) SetFlight(f *obs.Flight) { h.flight.Store(f) }

// Seq returns the current publication sequence.
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// Epoch returns the hub's instance nonce: the identifier of the sequence
// space its updates are numbered in, stamped on stream heartbeats so
// resuming clients can tell a restart from a blip.
func (h *Hub) Epoch() uint64 { return h.epoch }

// Subscribers returns the number of active subscriptions.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Append implements tstore.Sink: every appended record is published as a
// state update. It never fails — a hub cannot refuse traffic, only
// individual slow subscribers can lose it.
func (h *Hub) Append(recs ...model.VesselState) error {
	for i := range recs {
		h.PublishState(recs[i])
	}
	return nil
}

// PublishState publishes one vessel state to matching subscribers.
func (h *Hub) PublishState(s model.VesselState) {
	if !h.armed.Load() {
		return
	}
	ws := StateOf(s)
	h.publish(Update{Kind: UpdateState, State: &ws})
}

// PublishAlert publishes one recognised alert to matching subscribers.
func (h *Hub) PublishAlert(a events.Alert) {
	if !h.armed.Load() {
		return
	}
	wa := AlertOf(a)
	h.publish(Update{Kind: UpdateAlert, Alert: &wa})
}

func (h *Hub) publish(u Update) {
	h.Metrics.In.Add(1)
	h.mu.Lock()
	defer h.mu.Unlock()
	var t0 time.Time
	timed := h.pubNS != nil && h.seq&63 == 0
	if timed {
		t0 = time.Now()
	}
	if h.ring == nil { // armed is set before Subscribe takes the lock
		h.ring = make([]Update, h.cfg.Replay)
	}
	h.seq++
	u.Seq = h.seq
	h.ring[int(h.seq)%len(h.ring)] = u
	for s := range h.subs {
		s.offer(u, &h.Metrics)
	}
	if timed {
		h.pubNS.ObserveSince(t0) // atomic adds; no IO under the lock
	}
}

// Instrument registers the hub's fan-out series with reg — publication,
// delivery and drop counters (windows onto Metrics), subscriber count,
// aggregate and worst per-subscriber queue depth — and enables sampled
// publish timing (hub_publish_ns, every 64th publication). Call before
// the hub starts receiving traffic; pubNS is read without
// synchronisation after that.
func (h *Hub) Instrument(reg *obs.Registry) {
	h.pubNS = reg.Histogram("hub_publish_ns")
	reg.CounterFunc("hub_published_total", func() float64 { return float64(h.Metrics.In.Load()) })
	reg.CounterFunc("hub_delivered_total", func() float64 { return float64(h.Metrics.Out.Load()) })
	reg.CounterFunc("hub_dropped_total", func() float64 { return float64(h.Metrics.Dropped.Load()) })
	reg.GaugeFunc("hub_subscribers", func() float64 { return float64(h.Subscribers()) })
	reg.GaugeFunc("hub_queue_depth", func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		total := 0
		for s := range h.subs {
			total += len(s.ch)
		}
		return float64(total)
	})
	reg.GaugeFunc("hub_queue_depth_max", func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		mx := 0
		for s := range h.subs {
			if n := len(s.ch); n > mx {
				mx = n
			}
		}
		return float64(mx)
	})
}

// Subscribe turns req into a standing query against the hub. Supported
// kinds: trajectory (follow one vessel), spacetime (watch a box, time
// bounds honoured), live (watch a box, no time bounds) and alerts
// (severity- and time-filtered feed). Situation tickers need an executor
// — subscribe through a Streamer (or the ingest engine) for those.
func (h *Hub) Subscribe(req Request, opt SubOptions) (*Subscription, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	req = req.normalize()
	filter, err := filterFor(req)
	if err != nil {
		return nil, err
	}
	buf := opt.Buffer
	if buf < 1 {
		buf = h.cfg.Buffer
	}
	h.armed.Store(true)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ring == nil {
		h.ring = make([]Update, h.cfg.Replay)
	}
	// Best-effort replay: everything still in the ring after FromSeq, in
	// sequence order. Entries older than seq-len(ring) have been
	// overwritten; the subscriber detects the gap from the first Seq.
	var replay []Update
	startSeq := h.seq
	if (opt.FromSeq > 0 || opt.Resume) && opt.FromSeq < h.seq {
		lo := opt.FromSeq + 1
		if h.seq >= uint64(len(h.ring)) && lo < h.seq-uint64(len(h.ring))+1 {
			lo = h.seq - uint64(len(h.ring)) + 1
		}
		for q := lo; q <= h.seq; q++ {
			if u := h.ring[int(q)%len(h.ring)]; u.Seq == q && filter(&u) {
				replay = append(replay, u)
			}
		}
		startSeq = opt.FromSeq
	}
	// The queue is sized for the whole replay on top of the configured
	// bound, so every retained-and-matching update really is delivered —
	// a resume must not lose to its own (still undrained) fresh queue.
	sub := &Subscription{
		req: req, ch: make(chan Update, buf+len(replay)),
		filter: filter, startSeq: startSeq, flight: h.flight.Load(),
	}
	sub.epoch.Store(h.epoch)
	sub.stop = func() { h.remove(sub) }
	for _, u := range replay {
		sub.offer(u, &h.Metrics)
	}
	h.subs[sub] = struct{}{}
	return sub, nil
}

func (h *Hub) remove(sub *Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		close(sub.ch) // publication holds h.mu, so no send can race this
	}
}

// filterFor derives the standing-query predicate from a normalized
// request.
func filterFor(req Request) (func(*Update) bool, error) {
	from, to := req.timeRange()
	inWindow := func(at time.Time) bool { return !at.Before(from) && !at.After(to) }
	switch req.Kind {
	case KindTrajectory:
		return func(u *Update) bool {
			return u.Kind == UpdateState && u.State.MMSI == req.MMSI && inWindow(u.State.At)
		}, nil
	case KindSpaceTime:
		r := req.Box.Rect()
		return func(u *Update) bool {
			return u.Kind == UpdateState && inWindow(u.State.At) &&
				r.Contains(geo.Point{Lat: u.State.Lat, Lon: u.State.Lon})
		}, nil
	case KindLivePicture:
		r := req.Box.Rect()
		return func(u *Update) bool {
			return u.Kind == UpdateState &&
				r.Contains(geo.Point{Lat: u.State.Lat, Lon: u.State.Lon})
		}, nil
	case KindAlertHistory:
		return func(u *Update) bool {
			return u.Kind == UpdateAlert && u.Alert.Severity >= req.MinSeverity &&
				inWindow(u.Alert.At)
		}, nil
	default:
		return nil, fmt.Errorf("query: kind %q is not streamable (one of %v, or %v via a Streamer)",
			req.Kind, []Kind{KindTrajectory, KindSpaceTime, KindLivePicture, KindAlertHistory},
			tickerKinds)
	}
}

// tickerKinds are the standing queries a pure hub cannot serve: their
// answers are recomputed through an executor on a cadence, not filtered
// from the publication stream. The Streamer turns each into a ticker.
var tickerKinds = []Kind{KindSituation, KindTrack, KindPredict, KindQuality, KindAnomalies}

func isTickerKind(k Kind) bool {
	for _, t := range tickerKinds {
		if k == t {
			return true
		}
	}
	return false
}

// Streamer is the full Subscriber over a hub plus an executor: pub/sub
// kinds go to the hub, the ticker kinds (situation, track, predict,
// quality, anomalies) periodically recompute their answer through the
// executor and push it — a predict subscription shows dead-reckoned
// motion between AIS reports this way. It is also an Executor (delegating one-shot
// requests), so a Streamer is a complete two-mode surface NewServer can
// serve on its own.
type Streamer struct {
	hub  *Hub
	exec Executor
}

// NewStreamer composes a hub and an executor into a full Subscriber.
func NewStreamer(hub *Hub, exec Executor) *Streamer {
	return &Streamer{hub: hub, exec: exec}
}

// Hub returns the underlying hub.
func (st *Streamer) Hub() *Hub { return st.hub }

// Query implements Executor by delegating to the composed executor.
func (st *Streamer) Query(req Request) (*Result, error) {
	if st.exec == nil {
		return nil, fmt.Errorf("query: streamer has no executor")
	}
	return st.exec.Query(req)
}

// Subscribe implements Subscriber.
func (st *Streamer) Subscribe(req Request, opt SubOptions) (*Subscription, error) {
	if !isTickerKind(req.Kind) {
		return st.hub.Subscribe(req, opt)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if st.exec == nil {
		return nil, fmt.Errorf("query: %s subscriptions need an executor", req.Kind)
	}
	req = req.normalize()
	buf := opt.Buffer
	if buf < 1 {
		buf = st.hub.cfg.Buffer
	}
	done := make(chan struct{})
	sub := &Subscription{req: req, ch: make(chan Update, buf), startSeq: opt.FromSeq, flight: st.hub.flight.Load()}
	sub.epoch.Store(st.hub.epoch)
	sub.stop = func() { close(done) }
	go func() {
		defer close(sub.ch)
		tick := time.NewTicker(opt.tick())
		defer tick.Stop()
		// Ticks are recomputed, not replayed: Seq counts them — seeded
		// from FromSeq so a transparently resumed remote subscription
		// keeps its sequence strictly increasing across reconnects.
		n := opt.FromSeq
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			res, err := st.exec.Query(req)
			if err != nil {
				sub.setErr(err)
				return
			}
			u := Update{}
			switch req.Kind {
			case KindSituation:
				u.Kind, u.Situation = UpdateSituation, res.Situation
			case KindTrack:
				if res.Track == nil { // vessel unknown yet: no tick
					continue
				}
				u.Kind, u.Track = UpdateTrack, res.Track
			case KindPredict:
				if res.Prediction == nil {
					continue
				}
				u.Kind, u.Prediction = UpdatePredict, res.Prediction
			case KindQuality:
				if res.Quality == nil {
					continue
				}
				u.Kind, u.Quality = UpdateQuality, res.Quality
			case KindAnomalies:
				if res.Anomalies == nil { // vessel unknown yet: no tick
					continue
				}
				u.Kind, u.Anomalies = UpdateAnomalies, res.Anomalies
			}
			n++
			u.Seq = n
			// Ticks are assembled, not published: keep them out of the
			// hub's In/Out accounting (drops still show on the
			// subscription itself).
			sub.offer(u, nil)
		}
	}()
	return sub, nil
}
