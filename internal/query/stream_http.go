package query

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// StreamRequest is the wire form of a subscription: the standing Request
// plus the transport options of its stream. POST it to /v1/stream; the
// response is an unbounded application/x-ndjson body, one Update per
// line, opened by a heartbeat that acknowledges the subscriber's starting
// sequence.
type StreamRequest struct {
	Request Request `json:"request"`
	// FromSeq resumes after the given hub sequence (best-effort replay
	// from the server's retention ring). Resume marks it authoritative
	// even at 0 — see SubOptions.Resume.
	FromSeq uint64 `json:"from_seq,omitempty"`
	Resume  bool   `json:"resume,omitempty"`
	// Buffer bounds the server-side queue for this subscriber; a full
	// queue drops updates (counted, surfaced on heartbeats). The server
	// clamps wire-supplied buffers to 65536 slots — memory is allocated
	// per subscriber, and a remote caller does not get to size it
	// arbitrarily.
	Buffer int `json:"buffer,omitempty"`
	// Heartbeat is the keep-alive cadence (default 15s, min 100ms).
	Heartbeat Duration `json:"heartbeat,omitempty"`
	// Tick is the situation assembly cadence (situation kind only).
	Tick Duration `json:"tick,omitempty"`
}

// maxWireBuffer caps the per-subscriber queue a remote caller may
// request: large enough for any reasonable replay+burst, small enough
// that one cheap POST cannot allocate daemon-threatening memory.
const maxWireBuffer = 1 << 16

// options converts the wire form into SubOptions, clamping the
// remote-controlled queue bound.
func (sr StreamRequest) options() SubOptions {
	buf := sr.Buffer
	if buf > maxWireBuffer {
		buf = maxWireBuffer
	}
	return SubOptions{
		Buffer:    buf,
		FromSeq:   sr.FromSeq,
		Resume:    sr.Resume,
		Heartbeat: time.Duration(sr.Heartbeat),
		Tick:      time.Duration(sr.Tick),
	}
}

// handleStream serves one standing query as NDJSON: decode a
// StreamRequest, subscribe, then forward updates as they arrive,
// interleaved with heartbeats that carry the subscriber's last
// acknowledged sequence and its drop count. The stream ends when the
// client disconnects (or cancels the request context) — or with a final
// error line if the subscription itself fails server-side.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST with a StreamRequest body"))
		return
	}
	if s.sub == nil {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("query: this server's executor does not support subscriptions"))
		return
	}
	var sr StreamRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding stream request: %w", err))
		return
	}
	opt := sr.options()
	sub, err := s.sub.Subscribe(sr.Request, opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	enc := json.NewEncoder(w)
	lastSeq := sub.StartSeq()
	heartbeat := func() error {
		return enc.Encode(Update{
			Kind: UpdateHeartbeat, Seq: lastSeq,
			Dropped: sub.Dropped(), Epoch: sub.Epoch(),
		})
	}
	// Opening heartbeat: tells the subscriber where its stream starts —
	// and in which daemon epoch — so a resume after disconnect has a
	// sequence to hand back even if no update ever matched, and can tell
	// a restarted daemon (stale cursor, rewind) from the one it left.
	if heartbeat() != nil {
		return
	}
	flush()

	// closed handles the subscription ending server-side (situation
	// executor failure, hub shutdown) from either receive site: surface
	// why as a terminal update, which the client folds into
	// Subscription.Err instead of treating the EOF as a transport loss.
	closed := func() {
		if err := sub.Err(); err != nil {
			enc.Encode(Update{Kind: UpdateError, Seq: lastSeq, Error: err.Error()})
		}
		flush()
	}

	hb := time.NewTicker(opt.heartbeat())
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hb.C:
			if heartbeat() != nil {
				return
			}
			flush()
		case u, ok := <-sub.Updates():
			if !ok {
				closed()
				return
			}
			lastSeq = u.Seq
			if enc.Encode(u) != nil {
				return
			}
			// Drain whatever queued behind it before flushing: one
			// syscall for a burst instead of one per update.
		drain:
			for {
				select {
				case u, ok := <-sub.Updates():
					if !ok {
						closed()
						return
					}
					lastSeq = u.Seq
					if enc.Encode(u) != nil {
						return
					}
				default:
					break drain
				}
			}
			flush()
		}
	}
}
