package query

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tstore"
)

// --- fixtures -------------------------------------------------------------------

var t0 = time.Date(2017, 3, 21, 12, 0, 0, 0, time.UTC)

// testStates builds a deterministic fleet: `vessels` tracks of `n`
// samples each, one sample a minute, marching north-east from a
// per-vessel offset inside the Ligurian box.
func testStates(vessels, n int) []model.VesselState {
	var out []model.VesselState
	for v := 0; v < vessels; v++ {
		mmsi := uint32(201000001 + v)
		for i := 0; i < n; i++ {
			out = append(out, model.VesselState{
				MMSI: mmsi,
				At:   t0.Add(time.Duration(i) * time.Minute),
				Pos: geo.Point{
					Lat: 42.0 + float64(v)*0.05 + float64(i)*0.002,
					Lon: 5.0 + float64(v)*0.08 + float64(i)*0.003,
				},
				SpeedKn:   8 + float64(v%5),
				CourseDeg: 45,
				Status:    ais.StatusUnderWayEngine,
			})
		}
	}
	return out
}

func fill(st *tstore.Store, states []model.VesselState) *tstore.Store {
	for _, s := range states {
		st.Append(s)
	}
	return st
}

func statesEqual(t *testing.T, label string, got, want []model.VesselState) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d states, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].MMSI != want[i].MMSI || !got[i].At.Equal(want[i].At) ||
			got[i].Pos != want[i].Pos || got[i].SpeedKn != want[i].SpeedKn {
			t.Fatalf("%s: state %d differs: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// --- engine == direct store methods (acceptance criterion 1) --------------------

func TestStoreSourceMatchesDirectStore(t *testing.T) {
	states := testStates(12, 40)
	st := fill(tstore.New(), states)
	eng := NewEngine(NewStoreSource("archive", st))

	mmsi := uint32(201000004)
	from, to := t0.Add(5*time.Minute), t0.Add(25*time.Minute)
	box := Box{MinLat: 42.1, MinLon: 5.2, MaxLat: 42.5, MaxLon: 5.8}

	t.Run("trajectory", func(t *testing.T) {
		res, err := eng.Query(Request{Kind: KindTrajectory, MMSI: mmsi, From: from, To: to})
		if err != nil {
			t.Fatal(err)
		}
		statesEqual(t, "trajectory", res.ModelStates(), st.TimeRange(mmsi, from, to))
	})
	t.Run("trajectory unbounded", func(t *testing.T) {
		res, err := eng.Query(Request{Kind: KindTrajectory, MMSI: mmsi})
		if err != nil {
			t.Fatal(err)
		}
		statesEqual(t, "trajectory", res.ModelStates(), st.Trajectory(mmsi).Points)
	})
	t.Run("spacetime", func(t *testing.T) {
		res, err := eng.Query(Request{Kind: KindSpaceTime, Box: &box, From: from, To: to})
		if err != nil {
			t.Fatal(err)
		}
		statesEqual(t, "spacetime", res.ModelStates(), st.SpaceTime(box.Rect(), from, to))
		if res.Count == 0 {
			t.Fatal("spacetime fixture query matched nothing — fixture broken")
		}
	})
	t.Run("nearest", func(t *testing.T) {
		p := geo.Point{Lat: 42.3, Lon: 5.5}
		at := t0.Add(20 * time.Minute)
		tol := 10 * time.Minute
		res, err := eng.Query(Request{
			Kind: KindNearest, Lat: p.Lat, Lon: p.Lon, At: at, Tol: Duration(tol), K: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := st.SpatialSnapshot().NearestVessels(p, at, tol, 5)
		statesEqual(t, "nearest", res.ModelStates(), want)
		if res.Count == 0 {
			t.Fatal("nearest fixture query matched nothing — fixture broken")
		}
	})
	t.Run("live picture", func(t *testing.T) {
		wide := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
		res, err := eng.Query(Request{Kind: KindLivePicture, Box: &wide})
		if err != nil {
			t.Fatal(err)
		}
		var want []model.VesselState
		for _, m := range st.MMSIs() {
			pts := st.Trajectory(m).Points
			want = append(want, pts[len(pts)-1])
		}
		statesEqual(t, "live", res.ModelStates(), want)
	})
	t.Run("stats", func(t *testing.T) {
		res, err := eng.Query(Request{Kind: KindStats})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Points != st.Len() || res.Stats.Vessels != st.VesselCount() {
			t.Fatalf("stats: got %d points / %d vessels, want %d / %d",
				res.Stats.Points, res.Stats.Vessels, st.Len(), st.VesselCount())
		}
	})
}

// simReports feeds a simulated run (for live-pipeline tests that need
// realistic traffic and alerts).
func simReports(t testing.TB, vessels int, dur time.Duration) *sim.Run {
	t.Helper()
	cfg := sim.Config{Seed: 7, NumVessels: vessels, Duration: dur, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestLiveSourceMatchesDirectSharded(t *testing.T) {
	run := simReports(t, 30, 15*time.Minute)
	sharded := core.NewSharded(core.Config{Zones: run.Config.World.Zones}, 4)
	single := core.New(core.Config{Zones: run.Config.World.Zones})
	for i := range run.Positions {
		o := &run.Positions[i]
		sharded.Ingest(o.At, &o.Report)
		single.Ingest(o.At, &o.Report)
	}
	eng := NewEngine(NewLiveSource(sharded))
	bounds := run.Config.World.Bounds
	box := BoxOf(bounds)

	t.Run("spacetime matches single pipeline", func(t *testing.T) {
		res, err := eng.Query(Request{Kind: KindSpaceTime, Box: &box})
		if err != nil {
			t.Fatal(err)
		}
		want := single.Store.SpaceTime(bounds, time.Time{}, t0.AddDate(10, 0, 0))
		statesEqual(t, "spacetime", res.ModelStates(), want)
		if res.Count == 0 {
			t.Fatal("fixture query matched nothing")
		}
	})
	t.Run("trajectory routes to owning shard", func(t *testing.T) {
		for _, mmsi := range single.Store.MMSIs() {
			res, err := eng.Query(Request{Kind: KindTrajectory, MMSI: mmsi})
			if err != nil {
				t.Fatal(err)
			}
			statesEqual(t, fmt.Sprintf("vessel %d", mmsi), res.ModelStates(), single.Store.Trajectory(mmsi).Points)
		}
	})
	t.Run("live picture matches merged InRect", func(t *testing.T) {
		res, err := eng.Query(Request{Kind: KindLivePicture, Box: &box})
		if err != nil {
			t.Fatal(err)
		}
		want := single.Live.InRect(bounds)
		statesEqual(t, "live", res.ModelStates(), want)
	})
	t.Run("nearest matches single-pipeline snapshot", func(t *testing.T) {
		p := bounds.Center()
		at := run.Positions[len(run.Positions)/2].At
		res, err := eng.Query(Request{
			Kind: KindNearest, Lat: p.Lat, Lon: p.Lon, At: at, Tol: Duration(10 * time.Minute), K: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := single.Store.SpatialSnapshot().NearestVessels(p, at, 10*time.Minute, 7)
		// Shard merge must produce the same vessel set at the same
		// distances (order between equidistant vessels may differ).
		if len(res.States) != len(want) {
			t.Fatalf("nearest: got %d vessels, want %d", len(res.States), len(want))
		}
		for i := range want {
			gd := geo.Distance(p, geo.Point{Lat: res.States[i].Lat, Lon: res.States[i].Lon})
			wd := geo.Distance(p, want[i].Pos)
			if diff := gd - wd; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("nearest: rank %d distance %.9f != %.9f", i, gd, wd)
			}
		}
	})
	t.Run("alert history matches sharded alerts", func(t *testing.T) {
		res, err := eng.Query(Request{Kind: KindAlertHistory})
		if err != nil {
			t.Fatal(err)
		}
		want := sharded.Alerts()
		if len(res.Alerts) != len(want) {
			t.Fatalf("alerts: got %d, want %d", len(res.Alerts), len(want))
		}
		// Both sides are time-ordered; ties may interleave differently,
		// so compare as multisets.
		got := make([]string, len(res.Alerts))
		for i, a := range res.Alerts {
			got[i] = fmt.Sprintf("%s|%d|%d|%s|%d", a.Kind, a.MMSI, a.Other, a.At.Format(time.RFC3339Nano), a.Severity)
		}
		exp := make([]string, len(want))
		for i, a := range want {
			exp[i] = fmt.Sprintf("%s|%d|%d|%s|%d", a.Kind, a.MMSI, a.Other, a.At.Format(time.RFC3339Nano), a.Severity)
		}
		sort.Strings(got)
		sort.Strings(exp)
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("alert multiset differs at %d: got %s want %s", i, got[i], exp[i])
			}
		}
	})
	t.Run("situation grid matches sharded situation", func(t *testing.T) {
		at := run.Positions[len(run.Positions)-1].At
		res, err := eng.Query(Request{Kind: KindSituation, Box: &box, At: at, Rows: 12, Cols: 48})
		if err != nil {
			t.Fatal(err)
		}
		want := sharded.Situation(at, bounds, 12, 48)
		if len(res.Situation.Density) != len(want.Density.Counts) {
			t.Fatalf("grid size: got %d, want %d", len(res.Situation.Density), len(want.Density.Counts))
		}
		for i := range want.Density.Counts {
			if res.Situation.Density[i] != want.Density.Counts[i] {
				t.Fatalf("density bin %d: got %d, want %d", i, res.Situation.Density[i], want.Density.Counts[i])
			}
		}
		if len(res.Situation.Vessels) != len(want.Vessels) {
			t.Fatalf("vessels: got %d, want %d", len(res.Situation.Vessels), len(want.Vessels))
		}
		if len(res.Situation.Alerts) != len(want.Alerts) {
			t.Fatalf("alerts: got %d, want %d", len(res.Situation.Alerts), len(want.Alerts))
		}
	})
	t.Run("stats", func(t *testing.T) {
		res, err := eng.Query(Request{Kind: KindStats})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Points != single.Store.Len() {
			t.Fatalf("stats points: got %d, want %d", res.Stats.Points, single.Store.Len())
		}
		if res.Stats.Live != single.Live.Count() {
			t.Fatalf("stats live: got %d, want %d", res.Stats.Live, single.Live.Count())
		}
	})
}

// --- merged live+archive: dedupe on (MMSI, timestamp) (acceptance criterion 3) --

func TestMergedSourcesDeduplicate(t *testing.T) {
	states := testStates(10, 60)
	// The archive holds the first two thirds, the "live" store holds the
	// last two thirds: the middle third exists in BOTH sources.
	cut1, cut2 := len(states)/3, 2*len(states)/3
	archive := tstore.New()
	livest := tstore.New()
	for i, s := range states {
		if i < cut2 {
			archive.Append(s)
		}
		if i >= cut1 {
			livest.Append(s)
		}
	}
	if archive.Len()+livest.Len() <= len(states) {
		t.Fatal("fixture must overlap")
	}
	eng := NewEngine(NewStoreSource("live", livest), NewStoreSource("archive", archive))

	wide := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	res, err := eng.Query(Request{Kind: KindSpaceTime, Box: &wide})
	if err != nil {
		t.Fatal(err)
	}
	// No (MMSI, timestamp) duplicates...
	seen := map[string]bool{}
	for _, s := range res.States {
		k := fmt.Sprintf("%d|%s", s.MMSI, s.At.Format(time.RFC3339Nano))
		if seen[k] {
			t.Fatalf("duplicate (MMSI, timestamp) in merged result: %s", k)
		}
		seen[k] = true
	}
	// ...and the merged answer is exactly the full dataset.
	want := append([]model.VesselState(nil), states...)
	sort.Slice(want, func(i, j int) bool {
		if want[i].MMSI != want[j].MMSI {
			return want[i].MMSI < want[j].MMSI
		}
		return want[i].At.Before(want[j].At)
	})
	statesEqual(t, "merged spacetime", res.ModelStates(), want)

	// Same guarantee per vessel.
	res, err = eng.Query(Request{Kind: KindTrajectory, MMSI: states[0].MMSI})
	if err != nil {
		t.Fatal(err)
	}
	var wantTr []model.VesselState
	for _, s := range states {
		if s.MMSI == states[0].MMSI {
			wantTr = append(wantTr, s)
		}
	}
	statesEqual(t, "merged trajectory", res.ModelStates(), wantTr)

	// The merged live picture keeps the newest state per vessel once.
	res, err = eng.Query(Request{Kind: KindLivePicture, Box: &wide})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 10 {
		t.Fatalf("merged live picture: got %d vessels, want 10", res.Count)
	}
	for i, s := range res.States {
		if !s.At.Equal(states[0].At.Add(59 * time.Minute)) {
			t.Fatalf("live state %d is not the newest sample: %s", i, s.At)
		}
	}
}

func TestMergedNearestPrefersClosestAcrossSources(t *testing.T) {
	near := model.VesselState{MMSI: 1001, At: t0, Pos: geo.Point{Lat: 42.0, Lon: 5.0}}
	far := model.VesselState{MMSI: 1002, At: t0, Pos: geo.Point{Lat: 42.5, Lon: 5.5}}
	// The same vessel also appears farther away in the other source at a
	// different instant — per-vessel dedupe must keep its nearest sample.
	nearDup := model.VesselState{MMSI: 1001, At: t0.Add(time.Minute), Pos: geo.Point{Lat: 42.4, Lon: 5.4}}
	a := fill(tstore.New(), []model.VesselState{near})
	b := fill(tstore.New(), []model.VesselState{far, nearDup})
	eng := NewEngine(NewStoreSource("a", a), NewStoreSource("b", b))
	res, err := eng.Query(Request{Kind: KindNearest, Lat: 42.0, Lon: 5.0, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != 2 {
		t.Fatalf("got %d states, want 2", len(res.States))
	}
	if res.States[0].MMSI != 1001 || !res.States[0].At.Equal(t0) {
		t.Fatalf("rank 1 should be vessel 1001's near sample, got %+v", res.States[0])
	}
	if res.States[1].MMSI != 1002 {
		t.Fatalf("rank 2 should be vessel 1002, got %+v", res.States[1])
	}
}

// --- validation -----------------------------------------------------------------

func TestRequestValidation(t *testing.T) {
	eng := NewEngine(NewStoreSource("archive", tstore.New()))
	bad := []Request{
		{},                         // no kind
		{Kind: "bogus"},            // unknown kind
		{Kind: KindTrajectory},     // no MMSI
		{Kind: KindSpaceTime},      // no box
		{Kind: KindLivePicture},    // no box
		{Kind: KindSituation},      // no box
		{Kind: KindNearest, K: -1}, // negative k
		{Kind: KindNearest, Lat: 91, Lon: 3, At: t0},                                    // lat out of range
		{Kind: KindSpaceTime, Box: &Box{MinLat: 44, MinLon: 4, MaxLat: 42, MaxLon: 9}},  // inverted lat
		{Kind: KindSpaceTime, Box: &Box{MinLat: 42, MinLon: 9, MaxLat: 44, MaxLon: 4}},  // inverted lon
		{Kind: KindSpaceTime, Box: &Box{MinLat: -95, MinLon: 4, MaxLat: 44, MaxLon: 9}}, // lat range
		{Kind: KindTrajectory, MMSI: 1, From: t0, To: t0.Add(-time.Hour)},               // to < from
		{Kind: KindTrajectory, MMSI: 1, Limit: -1},                                      // negative limit
	}
	for i, req := range bad {
		if _, err := eng.Query(req); err == nil {
			t.Errorf("request %d (%+v) should have failed validation", i, req)
		}
	}
}

func TestParseBox(t *testing.T) {
	good, err := ParseBox("42, 4, 44, 9")
	if err != nil {
		t.Fatal(err)
	}
	if good.MinLat != 42 || good.MinLon != 4 || good.MaxLat != 44 || good.MaxLon != 9 {
		t.Fatalf("parsed box wrong: %+v", good)
	}
	for _, s := range []string{
		"",             // empty
		"42,4,44",      // too few fields
		"42,4,44,9,1",  // too many fields
		"42,4,nope,9",  // non-numeric
		"44,4,42,9",    // minLat > maxLat
		"42,9,44,4",    // minLon > maxLon
		"42,-190,44,9", // lon out of range
		"-95,4,44,9",   // lat out of range
	} {
		if _, err := ParseBox(s); err == nil {
			t.Errorf("ParseBox(%q) should fail", s)
		}
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	req := Request{
		Kind: KindNearest, Lat: 43.2, Lon: 5.3, At: t0,
		Tol: Duration(30 * time.Minute), K: 5,
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tol != req.Tol || !back.At.Equal(req.At) || back.Kind != req.Kind {
		t.Fatalf("round trip changed the request: %+v -> %+v", req, back)
	}
	// Duration accepts both encodings.
	var d Duration
	if err := json.Unmarshal([]byte(`"45m"`), &d); err != nil || d != Duration(45*time.Minute) {
		t.Fatalf("string duration: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`60000000000`), &d); err != nil || d != Duration(time.Minute) {
		t.Fatalf("numeric duration: %v %v", d, err)
	}
}

func TestLimitTruncates(t *testing.T) {
	st := fill(tstore.New(), testStates(3, 30))
	eng := NewEngine(NewStoreSource("archive", st))
	res, err := eng.Query(Request{Kind: KindTrajectory, MMSI: 201000001, Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != 7 || !res.Truncated || res.Count != 30 {
		t.Fatalf("limit: got %d states, truncated=%v, count=%d", len(res.States), res.Truncated, res.Count)
	}
}

// --- benchmarks (the E16 kinds; CI bench smoke compiles and runs these) ---------

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	st := fill(tstore.New(), testStates(100, 120))
	return NewEngine(NewStoreSource("archive", st))
}

func BenchmarkQuerySpaceTime(b *testing.B) {
	eng := benchEngine(b)
	box := Box{MinLat: 42.5, MinLon: 5.5, MaxLat: 44.0, MaxLon: 8.0}
	req := Request{Kind: KindSpaceTime, Box: &box, From: t0, To: t0.Add(time.Hour)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryNearest(b *testing.B) {
	eng := benchEngine(b)
	req := Request{
		Kind: KindNearest, Lat: 43.5, Lon: 6.5,
		At: t0.Add(time.Hour), Tol: Duration(15 * time.Minute), K: 10,
	}
	// Warm the spatial snapshot so the loop measures query cost, not the
	// one-time index build.
	if _, err := eng.Query(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(req); err != nil {
			b.Fatal(err)
		}
	}
}
