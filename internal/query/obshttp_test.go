package query

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tstore"
)

// traceShape reduces a returned trace to its sorted (parent>name) edge
// set — the structure of the tree, with the timing stripped. Two runs of
// the same query must produce the same shape even though durations flap.
func traceShape(spans []TraceSpan) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Parent + ">" + sp.Name
	}
	sort.Strings(out)
	return out
}

// TestFederatedTraceStitch pins the cross-daemon trace: a traced query
// through an engine with a federation peer comes back as ONE span tree —
// the local stage spans plus a peer/<addr> span whose children are the
// peer's own stages, rebased and path-prefixed — and the tree's
// structure is stable across runs.
func TestFederatedTraceStitch(t *testing.T) {
	all := testStates(4, 25)
	perVessel := 25
	remote := fill(tstore.New(), all[:2*perVessel]) // vessels 1, 2
	local := fill(tstore.New(), all[2*perVessel:])  // vessels 3, 4
	peerEng := NewEngine(NewStoreSource("peer-archive", remote))
	tsA := httptest.NewServer(NewServer(peerEng))
	defer tsA.Close()
	peer := NewClient(tsA.URL)
	peer.PeerName = "peerA"
	eng := NewEngine(NewStoreSource("local", local), peer)

	const peerOnly = 201000001
	run := func() *Result {
		t.Helper()
		res, err := eng.Query(Request{Kind: KindTrack, MMSI: peerOnly, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Track == nil {
			t.Fatal("federated track came back empty")
		}
		return res
	}
	res := run()

	byName := map[string]TraceSpan{}
	for _, sp := range res.Trace {
		byName[sp.Name] = sp
	}
	hop := "peer/" + tsA.URL
	for name, parent := range map[string]string{
		"source:local":               "",
		"source:peerA":               "",
		hop:                          "source:peerA",
		hop + "/source:peer-archive": hop,
		hop + "/total":               hop,
		"total":                      "",
	} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("trace missing span %q:\n%+v", name, res.Trace)
		}
		if sp.Parent != parent {
			t.Fatalf("span %q has parent %q, want %q", name, sp.Parent, parent)
		}
	}
	// The peer's spans are rebased onto the local clock: a child cannot
	// start before the hop span that carried it.
	if child := byName[hop+"/source:peer-archive"]; child.StartNS < byName[hop].StartNS {
		t.Fatalf("peer span starts (%d) before its hop (%d)", child.StartNS, byName[hop].StartNS)
	}

	// Structure-stable across runs: same edge set, every time.
	first := traceShape(res.Trace)
	for i := 0; i < 3; i++ {
		if again := traceShape(run().Trace); fmt.Sprint(again) != fmt.Sprint(first) {
			t.Fatalf("trace structure flapped between runs:\n%v\n%v", first, again)
		}
	}

	// A dead peer is visible as a degraded span, not silence — and the
	// degradation lands in the client's flight recorder, once per edge.
	tsA.Close()
	peer.PeerTimeout = 200 * time.Millisecond
	peer.Flight = obs.NewFlight(32)
	res, err := eng.Query(Request{Kind: KindTrack, MMSI: 201000003, Trace: true})
	if err != nil || res.Track == nil {
		t.Fatalf("local track under dead peer: res %+v err %v", res, err)
	}
	found := false
	for _, sp := range res.Trace {
		if sp.Name == hop+"/degraded" {
			if sp.Parent != hop {
				t.Fatalf("degraded span parented under %q, want %q", sp.Parent, hop)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("dead peer left no degraded span:\n%+v", res.Trace)
	}
	evs := peer.Flight.Events(obs.FlightFilter{Layer: "query", MinLevel: obs.FlightWarn})
	if len(evs) != 1 || evs[0].Msg != "federation peer degraded" {
		t.Fatalf("flight events = %+v, want one peer-degraded warn", evs)
	}
}

// TestSlowQueryHook: an armed server records over-threshold queries into
// the flight ring with their stage trace, and strips the forced trace
// from responses whose caller never asked for one.
func TestSlowQueryHook(t *testing.T) {
	st := fill(tstore.New(), testStates(1, 10))
	srv := NewServer(NewEngine(NewStoreSource("archive", st)))
	fl := obs.NewFlight(32)
	srv.RecordSlowQueries(time.Nanosecond, fl) // everything is slow
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(url string) *Result {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return &res
	}

	if res := get(ts.URL + "/v1/track?mmsi=201000001"); res.Trace != nil {
		t.Fatalf("forced trace leaked into the response: %+v", res.Trace)
	}
	evs := fl.Events(obs.FlightFilter{Layer: "query", MinLevel: obs.FlightWarn})
	if len(evs) != 1 || evs[0].Msg != "slow query" {
		t.Fatalf("flight = %+v, want one slow-query warn", evs)
	}
	var kind, trace string
	for _, kv := range evs[0].Fields() {
		switch kv.K {
		case "kind":
			kind = kv.S
		case "trace":
			trace = kv.S
		}
	}
	if kind != string(KindTrack) {
		t.Fatalf("slow event kind = %q, want %q", kind, KindTrack)
	}
	if !strings.Contains(trace, "source:archive@") || !strings.Contains(trace, "total@") {
		t.Fatalf("slow event trace %q missing stage spans", trace)
	}

	// A caller that asked for the trace still gets it.
	if res := get(ts.URL + "/v1/track?mmsi=201000001&trace=1"); len(res.Trace) == 0 {
		t.Fatal("requested trace was stripped")
	}
}

// TestHealthAndFlightEndpoints pins the HTTP surface: /healthz is
// unconditionally alive, /readyz follows the critical checks (503 when
// one fails, 200 on recovery), and /debug/flight serves the filtered
// ring.
func TestHealthAndFlightEndpoints(t *testing.T) {
	st := fill(tstore.New(), testStates(1, 5))
	srv := NewServer(NewEngine(NewStoreSource("archive", st)))
	h := obs.NewHealth()
	ok := true
	h.Register(obs.HealthCheck{Name: "gate", Critical: true,
		Check: func() (bool, string) { return ok, "" }})
	srv.ServeHealth(h)
	fl := obs.NewFlight(32)
	fl.Record(obs.FlightInfo, "store", "segment sealed", obs.FI("seq", 1))
	fl.Record(obs.FlightWarn, "hub", "subscriber dropping updates")
	srv.ServeFlight(fl)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		j, _ := json.Marshal(doc)
		return resp.StatusCode, string(j)
	}

	if code, body := status("/healthz"); code != http.StatusOK || !strings.Contains(body, `"alive":true`) {
		t.Fatalf("/healthz = %d %s", code, body)
	}
	if code, body := status("/readyz"); code != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("ready /readyz = %d %s", code, body)
	}
	ok = false
	if code, body := status("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"gate"`) {
		t.Fatalf("failed /readyz = %d %s, want 503 naming the check", code, body)
	}
	ok = true
	if code, _ := status("/readyz"); code != http.StatusOK {
		t.Fatalf("recovered /readyz = %d, want 200", code)
	}

	if code, body := status("/debug/flight"); code != http.StatusOK ||
		!strings.Contains(body, "segment sealed") || !strings.Contains(body, "subscriber dropping") {
		t.Fatalf("/debug/flight = %d %s", code, body)
	}
	if code, body := status("/debug/flight?layer=hub&level=warn"); code != http.StatusOK ||
		strings.Contains(body, "segment sealed") || !strings.Contains(body, "subscriber dropping") {
		t.Fatalf("filtered /debug/flight = %d %s", code, body)
	}
	if code, _ := status("/debug/flight?since=not-a-time"); code != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", code)
	}
}
