package ais

import (
	"fmt"
	"strconv"
	"strings"
)

// maxPayloadChars is the maximum number of armored payload characters per
// AIVDM sentence; longer messages (type 5) are split into fragments.
const maxPayloadChars = 60

// Sentence is a parsed NMEA 0183 AIVDM/AIVDO sentence.
type Sentence struct {
	Talker    string // "AIVDM" or "AIVDO"
	FragCount int
	FragNum   int
	MsgID     string // sequential message id linking fragments ("" if single)
	Channel   string // "A" or "B"
	Payload   string // armored payload characters
	FillBits  int
}

// Checksum computes the NMEA checksum (XOR of bytes between '!' and '*').
func Checksum(body string) byte {
	var cs byte
	for i := 0; i < len(body); i++ {
		cs ^= body[i]
	}
	return cs
}

// ParseSentence parses one AIVDM/AIVDO line, validating the checksum.
func ParseSentence(line string) (Sentence, error) {
	var s Sentence
	line = strings.TrimRight(line, "\r\n")
	if len(line) < 10 || line[0] != '!' {
		return s, fmt.Errorf("ais: not an NMEA sentence: %q", truncate(line, 32))
	}
	star := strings.LastIndexByte(line, '*')
	if star < 0 || star+3 > len(line) {
		return s, fmt.Errorf("ais: missing checksum: %q", truncate(line, 32))
	}
	body := line[1:star]
	want, err := strconv.ParseUint(line[star+1:star+3], 16, 8)
	if err != nil {
		return s, fmt.Errorf("ais: bad checksum field: %w", err)
	}
	if got := Checksum(body); got != byte(want) {
		return s, fmt.Errorf("ais: checksum mismatch: got %02X want %02X", got, byte(want))
	}
	// Split into exactly 7 comma-separated fields without allocating the
	// slice strings.Split would (decode hot path).
	var fields [7]string
	n := 0
	for n < 6 {
		i := strings.IndexByte(body, ',')
		if i < 0 {
			break
		}
		fields[n] = body[:i]
		body = body[i+1:]
		n++
	}
	if n != 6 || strings.IndexByte(body, ',') >= 0 {
		return s, fmt.Errorf("ais: expected 7 fields: %q", truncate(line, 32))
	}
	fields[6] = body
	if fields[0] != "AIVDM" && fields[0] != "AIVDO" {
		return s, fmt.Errorf("ais: unexpected talker %q", fields[0])
	}
	s.Talker = fields[0]
	if s.FragCount, err = strconv.Atoi(fields[1]); err != nil {
		return s, fmt.Errorf("ais: bad fragment count: %w", err)
	}
	if s.FragNum, err = strconv.Atoi(fields[2]); err != nil {
		return s, fmt.Errorf("ais: bad fragment number: %w", err)
	}
	s.MsgID = fields[3]
	s.Channel = fields[4]
	s.Payload = fields[5]
	if s.FillBits, err = strconv.Atoi(fields[6]); err != nil {
		return s, fmt.Errorf("ais: bad fill bits: %w", err)
	}
	if s.FragCount < 1 || s.FragNum < 1 || s.FragNum > s.FragCount {
		return s, fmt.Errorf("ais: inconsistent fragmentation %d/%d", s.FragNum, s.FragCount)
	}
	return s, nil
}

// Format renders the sentence as a complete NMEA line (without newline).
func (s Sentence) Format() string {
	body := fmt.Sprintf("%s,%d,%d,%s,%s,%s,%d",
		s.Talker, s.FragCount, s.FragNum, s.MsgID, s.Channel, s.Payload, s.FillBits)
	return fmt.Sprintf("!%s*%02X", body, Checksum(body))
}

// EncodeSentences encodes a message into one or more AIVDM lines. msgID is
// used to link fragments of multi-sentence messages; channel is "A" or "B".
func EncodeSentences(msg any, msgID int, channel string) ([]string, error) {
	bits, err := EncodePayload(msg)
	if err != nil {
		return nil, err
	}
	payload, fill := armorPayload(bits)
	if len(payload) <= maxPayloadChars {
		s := Sentence{Talker: "AIVDM", FragCount: 1, FragNum: 1,
			Channel: channel, Payload: payload, FillBits: fill}
		return []string{s.Format()}, nil
	}
	var out []string
	nfrag := (len(payload) + maxPayloadChars - 1) / maxPayloadChars
	id := strconv.Itoa(msgID % 10)
	for i := 0; i < nfrag; i++ {
		lo := i * maxPayloadChars
		hi := lo + maxPayloadChars
		if hi > len(payload) {
			hi = len(payload)
		}
		fb := 0
		if i == nfrag-1 {
			fb = fill
		}
		s := Sentence{Talker: "AIVDM", FragCount: nfrag, FragNum: i + 1,
			MsgID: id, Channel: channel, Payload: payload[lo:hi], FillBits: fb}
		out = append(out, s.Format())
	}
	return out, nil
}

// Decoder assembles AIVDM sentences (including multi-fragment messages)
// into decoded AIS messages. It is not safe for concurrent use; create one
// per input stream.
//
// The decoder reuses its unarmor and payload-assembly buffers, recycles
// fragment-map entries across messages and interns decoded text fields
// (ship names, call signs, destinations) through a zero-copy string
// table, so the steady-state Decode cost is the one allocation of the
// decoded message itself (see the allocs/op benchmarks in bench_test.go
// and the pin in ais_test.go).
type Decoder struct {
	pending map[string][]Sentence // msgID+channel -> fragments received so far

	single   [1]Sentence  // scratch for the single-fragment fast path
	payload  []byte       // reused multi-fragment payload assembly buffer
	bits     []byte       // reused unarmored-bit buffer
	fragFree [][]Sentence // recycled fragment slices from completed groups
	interned stringTable  // shared copies of decoded text fields

	// Stats counts decoding outcomes since creation.
	Stats DecoderStats
}

// DecoderStats counts decoder outcomes.
type DecoderStats struct {
	Sentences  int // sentences parsed OK
	Malformed  int // lines rejected at the sentence layer
	Messages   int // complete messages decoded
	Undecoded  int // payloads with unsupported type or truncated bits
	Incomplete int // fragment groups dropped by ResetPending
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder {
	return &Decoder{pending: make(map[string][]Sentence)}
}

// Decode consumes one NMEA line. It returns a decoded message when the line
// completes one, (nil, nil) when the line was consumed but the message is
// still incomplete, and an error for malformed input.
func (d *Decoder) Decode(line string) (any, error) {
	s, err := ParseSentence(line)
	if err != nil {
		d.Stats.Malformed++
		return nil, err
	}
	d.Stats.Sentences++
	if s.FragCount == 1 {
		d.single[0] = s
		return d.finish(d.single[:1])
	}
	key := s.MsgID + "/" + s.Channel
	frags, ok := d.pending[key]
	if !ok && len(d.fragFree) > 0 {
		frags = d.fragFree[len(d.fragFree)-1]
		d.fragFree = d.fragFree[:len(d.fragFree)-1]
	}
	frags = append(frags, s)
	if len(frags) < s.FragCount {
		d.pending[key] = frags
		return nil, nil
	}
	delete(d.pending, key)
	defer d.recycle(frags)
	// Check the fragment set is a permutation of 1..FragCount and sort it
	// into fragment-number order in place.
	for _, f := range frags {
		if f.FragNum < 1 || f.FragNum > s.FragCount {
			d.Stats.Undecoded++
			return nil, fmt.Errorf("ais: inconsistent fragment set for %q", key)
		}
	}
	for i := 0; i < len(frags); i++ {
		for frags[i].FragNum != i+1 {
			j := frags[i].FragNum - 1
			if frags[j].FragNum == frags[i].FragNum {
				d.Stats.Undecoded++
				return nil, fmt.Errorf("ais: inconsistent fragment set for %q", key)
			}
			frags[i], frags[j] = frags[j], frags[i]
		}
	}
	return d.finish(frags)
}

// recycle returns a completed fragment group's slice to the free list so
// the next multi-fragment message reuses its backing array.
func (d *Decoder) recycle(frags []Sentence) {
	for i := range frags {
		frags[i] = Sentence{} // drop string references
	}
	d.fragFree = append(d.fragFree, frags[:0])
}

func (d *Decoder) finish(frags []Sentence) (any, error) {
	fill := frags[len(frags)-1].FillBits
	d.payload = d.payload[:0]
	for _, f := range frags {
		d.payload = append(d.payload, f.Payload...)
	}
	bits, err := unarmorAppend(d.bits[:0], d.payload, fill)
	d.bits = bits[:0]
	if err != nil {
		d.Stats.Undecoded++
		return nil, err
	}
	msg, err := decodePayloadWith(bits, &d.interned)
	if err != nil {
		d.Stats.Undecoded++
		return nil, err
	}
	d.Stats.Messages++
	return msg, nil
}

// ResetPending drops any partially assembled fragment groups (call it when
// a stream gap makes completion impossible) and returns how many were
// dropped.
func (d *Decoder) ResetPending() int {
	n := len(d.pending)
	d.Stats.Incomplete += n
	d.pending = make(map[string][]Sentence)
	return n
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
