// Package ais implements the subset of ITU-R M.1371 (the AIS transponder
// standard) that maritime surveillance pipelines consume: Class A position
// reports (types 1–3), static and voyage data (type 5), Class B position
// reports (type 18) and Class B static data (type 24), together with the
// NMEA 0183 !AIVDM sentence layer (6-bit payload armoring, multi-fragment
// assembly and checksums).
//
// The codec is binary-faithful: encoding a message and decoding the
// resulting sentences yields the original field values up to the standard's
// own quantisation (positions in 1/10000 minute, speeds in 1/10 knot).
package ais

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

// bitWriter packs big-endian bit fields into a byte-per-bit buffer. AIS
// payloads are short (≤ 424 bits), so the simple representation wins on
// clarity with no measurable cost.
type bitWriter struct {
	bits []byte
}

func (w *bitWriter) writeUint(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.bits = append(w.bits, byte(v>>uint(i)&1))
	}
}

// writeInt writes a two's-complement signed value in n bits.
func (w *bitWriter) writeInt(v int64, n int) {
	w.writeUint(uint64(v)&(1<<uint(n)-1), n)
}

// writeString writes a 6-bit ASCII text field of n characters, padding with
// '@' (the AIS "no character" symbol).
func (w *bitWriter) writeString(s string, n int) {
	s = strings.ToUpper(s)
	for i := 0; i < n; i++ {
		var c byte = '@'
		if i < len(s) {
			c = s[i]
		}
		w.writeUint(uint64(charTo6bit(c)), 6)
	}
}

func (w *bitWriter) len() int { return len(w.bits) }

// bitReader unpacks big-endian bit fields. When intern is set (the
// Decoder's steady-state path), decoded text fields are resolved through
// its zero-copy string table instead of allocating a fresh string per
// field.
type bitReader struct {
	bits   []byte
	pos    int
	err    error
	intern *stringTable
}

var errShortPayload = errors.New("ais: payload too short")

func (r *bitReader) readUint(n int) uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+n > len(r.bits) {
		r.err = errShortPayload
		return 0
	}
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(r.bits[r.pos+i])
	}
	r.pos += n
	return v
}

func (r *bitReader) readInt(n int) int64 {
	v := r.readUint(n)
	if r.err != nil {
		return 0
	}
	if v&(1<<uint(n-1)) != 0 { // sign bit set
		return int64(v) - int64(1)<<uint(n)
	}
	return int64(v)
}

// readString reads an n-character 6-bit ASCII field, trimming the trailing
// '@' padding and surrounding spaces as receivers conventionally do. The
// characters are assembled in a scratch buffer; with an intern table the
// result is the table's shared copy (ship names, call signs and
// destinations repeat across a vessel's six-minute static rebroadcasts,
// so the steady-state cost is a map lookup, not an allocation).
func (r *bitReader) readString(n int) string {
	var buf []byte
	if r.intern != nil {
		buf = r.intern.scratch[:0]
	} else {
		buf = make([]byte, 0, n)
	}
	for i := 0; i < n; i++ {
		v := r.readUint(6)
		if r.err != nil {
			return ""
		}
		buf = append(buf, sixbitToChar(byte(v)))
	}
	if r.intern != nil {
		r.intern.scratch = buf[:0]
	}
	if i := bytes.IndexByte(buf, '@'); i >= 0 {
		buf = buf[:i]
	}
	for len(buf) > 0 && buf[len(buf)-1] == ' ' {
		buf = buf[:len(buf)-1]
	}
	if r.intern != nil {
		return r.intern.lookup(buf)
	}
	return string(buf)
}

// stringTableCap bounds the intern table so a feed of never-repeating
// text fields (hostile or corrupt input) cannot grow it without limit;
// past the cap, lookups that miss simply allocate like the untabled path.
const stringTableCap = 4096

// stringTable interns decoded 6-bit text fields. The map is keyed by the
// strings it stores, and lookup converts its []byte argument without
// allocating (the compiler's map[string]x with string(b) key
// optimisation), so a repeated field costs zero allocations.
type stringTable struct {
	m       map[string]string
	scratch []byte
}

// lookup returns the shared copy of b, adding one if the table has room.
func (t *stringTable) lookup(b []byte) string {
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if t.m == nil {
		t.m = make(map[string]string)
	}
	if len(t.m) < stringTableCap {
		t.m[s] = s
	}
	return s
}

func (r *bitReader) remaining() int { return len(r.bits) - r.pos }

// charTo6bit maps an ASCII character to the AIS 6-bit character set.
// Characters outside the set map to 0 ('@', "no character").
func charTo6bit(c byte) byte {
	switch {
	case c >= '@' && c <= '_': // @A-Z[\]^_
		return c - '@'
	case c >= ' ' && c <= '?': // space through ?
		return c
	default:
		return 0
	}
}

// sixbitToChar is the inverse of charTo6bit.
func sixbitToChar(v byte) byte {
	v &= 0x3F
	if v < 32 {
		return v + '@'
	}
	return v
}

// armorPayload converts a bit string into the ASCII payload armoring used by
// AIVDM sentences: every 6 bits become one character. It returns the payload
// and the number of fill bits added to complete the final character.
func armorPayload(bits []byte) (payload string, fill int) {
	n := len(bits)
	rem := n % 6
	if rem != 0 {
		fill = 6 - rem
	}
	var sb strings.Builder
	sb.Grow((n + fill) / 6)
	for i := 0; i < n; i += 6 {
		var v byte
		for j := 0; j < 6; j++ {
			v <<= 1
			if i+j < n {
				v |= bits[i+j]
			}
		}
		sb.WriteByte(armorChar(v))
	}
	return sb.String(), fill
}

// unarmorPayload converts an armored payload back into a bit string,
// dropping the given number of fill bits from the end.
func unarmorPayload(payload string, fill int) ([]byte, error) {
	return unarmorAppend(make([]byte, 0, len(payload)*6), []byte(payload), fill)
}

// unarmorAppend is the allocation-free core of unarmorPayload: it appends
// the unarmored bits to dst (reusing its capacity) so a decoder can hold
// one buffer across sentences.
func unarmorAppend(dst []byte, payload []byte, fill int) ([]byte, error) {
	base := len(dst)
	for i := 0; i < len(payload); i++ {
		v, ok := unarmorChar(payload[i])
		if !ok {
			return dst[:base], fmt.Errorf("ais: invalid armor character %q at %d", payload[i], i)
		}
		for j := 5; j >= 0; j-- {
			dst = append(dst, v>>uint(j)&1)
		}
	}
	if fill < 0 || fill > 5 || fill > len(dst)-base {
		return dst[:base], fmt.Errorf("ais: invalid fill bit count %d", fill)
	}
	return dst[:len(dst)-fill], nil
}

// armorChar maps a 6-bit value to its AIVDM payload character.
func armorChar(v byte) byte {
	v &= 0x3F
	c := v + 48
	if c > 87 {
		c += 8
	}
	return c
}

// unarmorChar maps an AIVDM payload character back to its 6-bit value.
func unarmorChar(c byte) (byte, bool) {
	if c >= 48 && c <= 87 {
		return c - 48, true
	}
	if c >= 96 && c <= 119 {
		return c - 56, true
	}
	return 0, false
}
