package ais

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestArmorRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		payload, fill := armorPayload(bits)
		back, err := unarmorPayload(payload, fill)
		if err != nil {
			return false
		}
		if len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if bits[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArmorCharTable(t *testing.T) {
	// Every 6-bit value must armor to a distinct valid character and back.
	seen := map[byte]bool{}
	for v := byte(0); v < 64; v++ {
		c := armorChar(v)
		if seen[c] {
			t.Fatalf("armor char collision at %d", v)
		}
		seen[c] = true
		got, ok := unarmorChar(c)
		if !ok || got != v {
			t.Fatalf("unarmor(armor(%d)) = %d, ok=%v", v, got, ok)
		}
	}
	if _, ok := unarmorChar('X' + 1); ok { // 'Y' = 89 is not a valid armor char
		t.Error("char 89 should be invalid")
	}
}

func TestSixbitTextRoundTrip(t *testing.T) {
	names := []string{"EVER GIVEN", "MAERSK ALABAMA 7", "L'AUDACIEUSE", "A", ""}
	for _, name := range names {
		w := &bitWriter{}
		w.writeString(name, 20)
		r := &bitReader{bits: w.bits}
		got := r.readString(20)
		want := strings.ToUpper(name)
		// The 6-bit charset has no lowercase and ' maps into the set.
		if got != want {
			t.Errorf("name round trip: %q -> %q", want, got)
		}
	}
}

func TestBitReaderShortPayload(t *testing.T) {
	r := &bitReader{bits: []byte{1, 0, 1}}
	r.readUint(8)
	if r.err == nil {
		t.Error("expected short payload error")
	}
	if _, err := DecodePayload([]byte{0, 0, 0, 0, 0, 1, 0, 0}); err == nil {
		t.Error("decoding a truncated type-1 payload should fail")
	}
}

func randPositionReport(r *rand.Rand, classB bool) *PositionReport {
	p := &PositionReport{
		Type:      TypePositionA,
		MMSI:      uint32(200000000 + r.Intn(599999999)),
		Status:    NavStatus(r.Intn(9)),
		TurnRate:  float64(r.Intn(40) - 20),
		SpeedKn:   float64(r.Intn(400)) / 10,
		Accuracy:  r.Intn(2) == 0,
		Position:  geo.Point{Lat: r.Float64()*160 - 80, Lon: r.Float64()*340 - 170},
		CourseDeg: float64(r.Intn(3599)) / 10,
		Heading:   r.Intn(360),
		Second:    r.Intn(60),
		RAIM:      r.Intn(2) == 0,
	}
	if classB {
		p.Type = TypePositionB
		p.Status = StatusNotDefined
		p.TurnRate = 0
	}
	return p
}

func TestPositionReportRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		classB := i%3 == 0
		orig := randPositionReport(r, classB)
		bits, err := EncodePayload(orig)
		if err != nil {
			t.Fatal(err)
		}
		wantBits := 168
		if len(bits) != wantBits {
			t.Fatalf("position report should be %d bits, got %d", wantBits, len(bits))
		}
		decoded, err := DecodePayload(bits)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := decoded.(*PositionReport)
		if !ok {
			t.Fatalf("decoded %T, want *PositionReport", decoded)
		}
		if got.MMSI != orig.MMSI {
			t.Fatalf("MMSI %d != %d", got.MMSI, orig.MMSI)
		}
		if got.Status != orig.Status {
			t.Fatalf("status %v != %v", got.Status, orig.Status)
		}
		if math.Abs(got.SpeedKn-orig.SpeedKn) > 0.051 {
			t.Fatalf("speed %.2f != %.2f", got.SpeedKn, orig.SpeedKn)
		}
		if math.Abs(got.CourseDeg-orig.CourseDeg) > 0.051 {
			t.Fatalf("course %.2f != %.2f", got.CourseDeg, orig.CourseDeg)
		}
		// Position quantum is 1/600000 degree ≈ 0.19 m; allow 1 m.
		if d := geo.Distance(got.Position, orig.Position); d > 1.0 {
			t.Fatalf("position moved %.2f m in round trip", d)
		}
		if got.Heading != orig.Heading || got.Second != orig.Second {
			t.Fatalf("heading/second mismatch")
		}
	}
}

func TestTurnRateRoundTrip(t *testing.T) {
	for _, rot := range []float64{0, 1, -1, 5.5, -5.5, 100, -100, 700} {
		enc := encodeROT(rot)
		dec := decodeROT(enc)
		// The companding is lossy; verify sign and coarse magnitude.
		if rot == 0 && dec != 0 {
			t.Errorf("ROT 0 should round trip exactly, got %f", dec)
		}
		if rot > 0 && dec < 0 || rot < 0 && dec > 0 {
			t.Errorf("ROT sign flipped: %f -> %f", rot, dec)
		}
		if rot != 0 && rot >= -700 && rot <= 700 {
			if math.Abs(dec-rot) > math.Abs(rot)*0.25+0.5 {
				t.Errorf("ROT %f decoded as %f", rot, dec)
			}
		}
	}
}

func TestStaticVoyageRoundTrip(t *testing.T) {
	orig := &StaticVoyage{
		MMSI:        227006760,
		IMO:         9074729,
		CallSign:    "FQ8L",
		ShipName:    "SALMON RUNNER",
		ShipType:    ShipTypeCargo,
		DimBow:      120,
		DimStern:    40,
		DimPort:     12,
		DimStarb:    10,
		Draught:     7.5,
		Destination: "MARSEILLE",
		ETA:         ETA{Month: 6, Day: 12, Hour: 14, Minute: 30},
	}
	bits, err := EncodePayload(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 424 {
		t.Fatalf("type 5 should be 424 bits, got %d", len(bits))
	}
	decoded, err := DecodePayload(bits)
	if err != nil {
		t.Fatal(err)
	}
	got := decoded.(*StaticVoyage)
	if got.MMSI != orig.MMSI || got.IMO != orig.IMO {
		t.Errorf("identity mismatch: %+v", got)
	}
	if got.CallSign != orig.CallSign || got.ShipName != orig.ShipName {
		t.Errorf("text mismatch: %q %q", got.CallSign, got.ShipName)
	}
	if got.ShipType != orig.ShipType || got.Destination != orig.Destination {
		t.Errorf("type/destination mismatch: %+v", got)
	}
	if got.Length() != 160 || got.Beam() != 22 {
		t.Errorf("dimensions mismatch: len=%d beam=%d", got.Length(), got.Beam())
	}
	if math.Abs(got.Draught-7.5) > 0.05 {
		t.Errorf("draught %f", got.Draught)
	}
	if got.ETA != orig.ETA {
		t.Errorf("ETA %+v != %+v", got.ETA, orig.ETA)
	}
}

func TestStaticBRoundTrip(t *testing.T) {
	orig := &StaticB{
		MMSI:     235082896,
		ShipName: "WANDERER",
		ShipType: ShipTypeFishing,
		CallSign: "2GCW",
		DimBow:   10, DimStern: 5, DimPort: 2, DimStarb: 2,
	}
	// Part A carries the name.
	orig.Part = 1
	bitsA, err := EncodePayload(orig)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := DecodePayload(bitsA)
	if err != nil {
		t.Fatal(err)
	}
	a := gotA.(*StaticB)
	if a.Part != 1 || a.ShipName != "WANDERER" || a.MMSI != orig.MMSI {
		t.Errorf("part A mismatch: %+v", a)
	}
	// Part B carries type, call sign, dimensions.
	orig.Part = 2
	bitsB, err := EncodePayload(orig)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := DecodePayload(bitsB)
	if err != nil {
		t.Fatal(err)
	}
	b := gotB.(*StaticB)
	if b.Part != 2 || b.ShipType != ShipTypeFishing || b.CallSign != "2GCW" {
		t.Errorf("part B mismatch: %+v", b)
	}
	if b.DimBow != 10 || b.DimStern != 5 {
		t.Errorf("part B dims mismatch: %+v", b)
	}
}

func TestSentenceRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := NewDecoder()
	for i := 0; i < 200; i++ {
		orig := randPositionReport(r, false)
		lines, err := EncodeSentences(orig, i, "A")
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) != 1 {
			t.Fatalf("position report should fit one sentence, got %d", len(lines))
		}
		if !strings.HasPrefix(lines[0], "!AIVDM,1,1,,A,") {
			t.Fatalf("unexpected sentence framing: %s", lines[0])
		}
		msg, err := d.Decode(lines[0])
		if err != nil {
			t.Fatal(err)
		}
		got := msg.(*PositionReport)
		if got.MMSI != orig.MMSI {
			t.Fatalf("round trip MMSI mismatch")
		}
	}
	if d.Stats.Messages != 200 || d.Stats.Malformed != 0 {
		t.Errorf("stats: %+v", d.Stats)
	}
}

func TestMultiFragmentType5(t *testing.T) {
	orig := &StaticVoyage{
		MMSI: 227006760, IMO: 9074729, CallSign: "FQ8L",
		ShipName: "LONG NAMED VESSEL XX", ShipType: ShipTypeTanker,
		DimBow: 200, DimStern: 80, DimPort: 20, DimStarb: 20,
		Draught: 14.2, Destination: "ROTTERDAM",
	}
	lines, err := EncodeSentences(orig, 3, "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("type 5 must fragment, got %d sentences", len(lines))
	}
	d := NewDecoder()
	// Feed fragments out of order: the decoder must reassemble.
	msg, err := d.Decode(lines[1])
	if err != nil || msg != nil {
		t.Fatalf("first fragment should be pending, got msg=%v err=%v", msg, err)
	}
	msg, err = d.Decode(lines[0])
	if err != nil {
		t.Fatal(err)
	}
	if msg == nil {
		t.Fatal("message should complete after all fragments")
	}
	got := msg.(*StaticVoyage)
	if got.ShipName != orig.ShipName || got.Destination != orig.Destination {
		t.Errorf("fragment reassembly corrupted text: %+v", got)
	}
}

func TestDecoderRejectsCorruption(t *testing.T) {
	orig := randPositionReport(rand.New(rand.NewSource(1)), false)
	lines, _ := EncodeSentences(orig, 0, "A")
	line := lines[0]

	d := NewDecoder()
	// Flip a payload character: checksum must catch it.
	bad := []byte(line)
	mid := len(bad) / 2
	bad[mid] ^= 0x01
	if _, err := d.Decode(string(bad)); err == nil {
		t.Error("corrupted sentence should fail checksum")
	}
	if d.Stats.Malformed != 1 {
		t.Errorf("malformed count = %d", d.Stats.Malformed)
	}
	// Garbage lines.
	for _, g := range []string{"", "$GPGGA,foo*00", "!AIVDM,1,1,,A", "!AIVDM,1,1,,A,xx,0*FF"} {
		if _, err := d.Decode(g); err == nil {
			t.Errorf("garbage %q should fail", g)
		}
	}
}

func TestResetPending(t *testing.T) {
	orig := &StaticVoyage{MMSI: 227006760, ShipName: "X", Destination: "Y"}
	lines, _ := EncodeSentences(orig, 5, "A")
	d := NewDecoder()
	if _, err := d.Decode(lines[0]); err != nil {
		t.Fatal(err)
	}
	if n := d.ResetPending(); n != 1 {
		t.Errorf("expected 1 pending group, got %d", n)
	}
	if n := d.ResetPending(); n != 0 {
		t.Errorf("expected 0 after reset, got %d", n)
	}
}

func TestChecksumKnown(t *testing.T) {
	// Verify against a well-known reference sentence from the AIVDM spec.
	const ref = "!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5C"
	s, err := ParseSentence(ref)
	if err != nil {
		t.Fatalf("reference sentence rejected: %v", err)
	}
	if s.Format() != ref {
		t.Errorf("reformat mismatch:\n got %s\nwant %s", s.Format(), ref)
	}
	d := NewDecoder()
	msg, err := d.Decode(ref)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := msg.(*PositionReport)
	if !ok {
		t.Fatalf("decoded %T", msg)
	}
	if p.MMSI != 477553000 {
		t.Errorf("reference MMSI = %d, want 477553000", p.MMSI)
	}
	if p.Status != StatusMoored {
		t.Errorf("reference status = %v, want moored", p.Status)
	}
	if p.SpeedKn != 0 {
		t.Errorf("reference speed = %v, want 0", p.SpeedKn)
	}
}

func TestValidMMSI(t *testing.T) {
	valid := []uint32{201000000, 477553000, 799999999}
	invalid := []uint32{0, 199999999, 800000000, 999999999}
	for _, m := range valid {
		if !ValidMMSI(m) {
			t.Errorf("%d should be valid", m)
		}
	}
	for _, m := range invalid {
		if ValidMMSI(m) {
			t.Errorf("%d should be invalid", m)
		}
	}
}

func TestSentinelValues(t *testing.T) {
	p := &PositionReport{
		Type: TypePositionA, MMSI: 211000000,
		SpeedKn:   SpeedNotAvailable,
		CourseDeg: CourseNotAvailable,
		Heading:   HeadingNotAvailable,
		Position:  geo.Point{Lat: LatNotAvailable, Lon: LonNotAvailable},
	}
	bits, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodePayload(bits)
	if err != nil {
		t.Fatal(err)
	}
	got := decoded.(*PositionReport)
	if got.SpeedKn != SpeedNotAvailable {
		t.Errorf("speed sentinel lost: %v", got.SpeedKn)
	}
	if got.CourseDeg != CourseNotAvailable {
		t.Errorf("course sentinel lost: %v", got.CourseDeg)
	}
	if got.Heading != HeadingNotAvailable {
		t.Errorf("heading sentinel lost: %v", got.Heading)
	}
	if got.HasPosition() {
		t.Error("sentinel position should not count as a fix")
	}
}

func TestMMSIOf(t *testing.T) {
	if MMSIOf(&PositionReport{MMSI: 5}) != 5 {
		t.Error("position report MMSI")
	}
	if MMSIOf(&StaticVoyage{MMSI: 6}) != 6 {
		t.Error("static voyage MMSI")
	}
	if MMSIOf(&StaticB{MMSI: 7}) != 7 {
		t.Error("static B MMSI")
	}
	if MMSIOf("nonsense") != 0 {
		t.Error("unknown type should give 0")
	}
}

func BenchmarkEncodePosition(b *testing.B) {
	p := randPositionReport(rand.New(rand.NewSource(1)), false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeSentences(p, i, "A"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePosition(b *testing.B) {
	p := randPositionReport(rand.New(rand.NewSource(1)), false)
	lines, _ := EncodeSentences(p, 0, "A")
	d := NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(lines[0]); err != nil {
			b.Fatal(err)
		}
	}
}
