package ais

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
)

// MessageType identifies the ITU-R M.1371 message kind.
type MessageType int

// Message types implemented by this codec.
const (
	TypePositionA       MessageType = 1 // Class A position report (also 2, 3)
	TypePositionAAssign MessageType = 2
	TypePositionAPolled MessageType = 3
	TypeStaticVoyage    MessageType = 5  // Class A static and voyage data
	TypePositionB       MessageType = 18 // Class B position report
	TypeStaticB         MessageType = 24 // Class B static data
)

// NavStatus is the navigational status field of Class A position reports.
type NavStatus int

// Navigational status values (ITU-R M.1371 table 45).
const (
	StatusUnderWayEngine NavStatus = 0
	StatusAtAnchor       NavStatus = 1
	StatusNotUnderCmd    NavStatus = 2
	StatusRestricted     NavStatus = 3
	StatusConstrained    NavStatus = 4
	StatusMoored         NavStatus = 5
	StatusAground        NavStatus = 6
	StatusFishing        NavStatus = 7
	StatusUnderWaySail   NavStatus = 8
	StatusNotDefined     NavStatus = 15
)

// String returns the conventional short name of the status.
func (s NavStatus) String() string {
	switch s {
	case StatusUnderWayEngine:
		return "under way using engine"
	case StatusAtAnchor:
		return "at anchor"
	case StatusNotUnderCmd:
		return "not under command"
	case StatusRestricted:
		return "restricted manoeuvrability"
	case StatusConstrained:
		return "constrained by draught"
	case StatusMoored:
		return "moored"
	case StatusAground:
		return "aground"
	case StatusFishing:
		return "engaged in fishing"
	case StatusUnderWaySail:
		return "under way sailing"
	case StatusNotDefined:
		return "not defined"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ShipType is the AIS ship-and-cargo type code (two decimal digits).
type ShipType int

// Common ship type codes.
const (
	ShipTypeUnknown   ShipType = 0
	ShipTypeFishing   ShipType = 30
	ShipTypeTug       ShipType = 52
	ShipTypePilot     ShipType = 50
	ShipTypeSAR       ShipType = 51
	ShipTypePassenger ShipType = 60
	ShipTypeCargo     ShipType = 70
	ShipTypeTanker    ShipType = 80
)

// String returns a coarse class name for the code.
func (st ShipType) String() string {
	switch {
	case st == 30:
		return "fishing"
	case st == 52:
		return "tug"
	case st >= 60 && st < 70:
		return "passenger"
	case st >= 70 && st < 80:
		return "cargo"
	case st >= 80 && st < 90:
		return "tanker"
	case st == 0:
		return "unknown"
	default:
		return fmt.Sprintf("type(%d)", int(st))
	}
}

// Sentinel values defined by the standard for "not available".
const (
	SpeedNotAvailable   = 102.3 // knots; raw 1023
	CourseNotAvailable  = 360.0 // degrees; raw 3600
	HeadingNotAvailable = 511   // degrees
	LonNotAvailable     = 181.0 // degrees
	LatNotAvailable     = 91.0  // degrees
)

// PositionReport is a decoded Class A (types 1–3) or Class B (type 18)
// position report. Speeds are in knots and angles in degrees, matching the
// radio encoding; convert with geo.Knot for SI work.
type PositionReport struct {
	Type      MessageType
	MMSI      uint32
	Status    NavStatus // Class A only; StatusNotDefined for Class B
	TurnRate  float64   // degrees/min, NaN-free: 0 when unavailable
	SpeedKn   float64   // speed over ground, knots; SpeedNotAvailable sentinel
	Accuracy  bool      // true = high (< 10 m)
	Position  geo.Point
	CourseDeg float64 // course over ground; CourseNotAvailable sentinel
	Heading   int     // true heading; HeadingNotAvailable sentinel
	Second    int     // UTC second of the report (0–59; 60 = n/a)
	RAIM      bool
}

// HasPosition reports whether the report carries a valid position fix.
func (p *PositionReport) HasPosition() bool {
	return p.Position.Lon != LonNotAvailable && p.Position.Lat != LatNotAvailable &&
		p.Position.Valid()
}

// StaticVoyage is a decoded type 5 (Class A static and voyage) message.
type StaticVoyage struct {
	MMSI        uint32
	IMO         uint32
	CallSign    string
	ShipName    string
	ShipType    ShipType
	DimBow      int // metres to bow from reference point
	DimStern    int
	DimPort     int
	DimStarb    int
	Draught     float64 // metres
	Destination string
	ETA         ETA
}

// Length returns the overall length implied by the dimension fields.
func (s *StaticVoyage) Length() int { return s.DimBow + s.DimStern }

// Beam returns the overall beam implied by the dimension fields.
func (s *StaticVoyage) Beam() int { return s.DimPort + s.DimStarb }

// ETA is the estimated time of arrival field of a type 5 message (month,
// day, hour, minute; zero month means not available).
type ETA struct {
	Month, Day, Hour, Minute int
}

// IsZero reports whether the ETA is the "not available" value.
func (e ETA) IsZero() bool { return e.Month == 0 }

// StaticB is a decoded type 24 (Class B static) message. Part A carries the
// name; part B the type, call sign and dimensions. This struct is the merge
// of both parts; Part records which parts have been seen.
type StaticB struct {
	MMSI     uint32
	Part     int // bitmask: 1 = part A seen, 2 = part B seen
	ShipName string
	ShipType ShipType
	CallSign string
	DimBow   int
	DimStern int
	DimPort  int
	DimStarb int
}

// Envelope carries a decoded message with reception metadata attached by the
// sentence layer.
type Envelope struct {
	Received time.Time // receiver timestamp
	Source   string    // receiver / channel identifier
	Message  any       // *PositionReport, *StaticVoyage or *StaticB
}

// MMSIOf extracts the MMSI from any supported message type, or 0.
func MMSIOf(msg any) uint32 {
	switch m := msg.(type) {
	case *PositionReport:
		return m.MMSI
	case *StaticVoyage:
		return m.MMSI
	case *StaticB:
		return m.MMSI
	default:
		return 0
	}
}

// ValidMMSI reports whether m is a structurally plausible vessel MMSI:
// nine digits whose leading MID digit is in 2–7 (ship stations).
func ValidMMSI(m uint32) bool {
	if m < 200000000 || m > 799999999 {
		return false
	}
	return true
}

// encodePosition writes the shared 168-bit layout of types 1–3.
func (p *PositionReport) encode() []byte {
	w := &bitWriter{}
	t := p.Type
	if t != TypePositionA && t != TypePositionAAssign && t != TypePositionAPolled && t != TypePositionB {
		t = TypePositionA
	}
	if t == TypePositionB {
		return p.encodeB()
	}
	w.writeUint(uint64(t), 6)
	w.writeUint(0, 2) // repeat
	w.writeUint(uint64(p.MMSI), 30)
	w.writeUint(uint64(p.Status)&0xF, 4)
	w.writeInt(encodeROT(p.TurnRate), 8)
	w.writeUint(encodeSpeed(p.SpeedKn), 10)
	w.writeUint(boolBit(p.Accuracy), 1)
	w.writeInt(encodeLon(p.Position.Lon), 28)
	w.writeInt(encodeLat(p.Position.Lat), 27)
	w.writeUint(encodeCourse(p.CourseDeg), 12)
	w.writeUint(uint64(clampInt(p.Heading, 0, 511)), 9)
	w.writeUint(uint64(clampInt(p.Second, 0, 63)), 6)
	w.writeUint(0, 2) // manoeuvre indicator
	w.writeUint(0, 3) // spare
	w.writeUint(boolBit(p.RAIM), 1)
	w.writeUint(0, 19) // radio status
	return w.bits
}

// encodeB writes the 168-bit type 18 layout.
func (p *PositionReport) encodeB() []byte {
	w := &bitWriter{}
	w.writeUint(uint64(TypePositionB), 6)
	w.writeUint(0, 2)
	w.writeUint(uint64(p.MMSI), 30)
	w.writeUint(0, 8) // reserved
	w.writeUint(encodeSpeed(p.SpeedKn), 10)
	w.writeUint(boolBit(p.Accuracy), 1)
	w.writeInt(encodeLon(p.Position.Lon), 28)
	w.writeInt(encodeLat(p.Position.Lat), 27)
	w.writeUint(encodeCourse(p.CourseDeg), 12)
	w.writeUint(uint64(clampInt(p.Heading, 0, 511)), 9)
	w.writeUint(uint64(clampInt(p.Second, 0, 63)), 6)
	w.writeUint(0, 2) // reserved
	w.writeUint(1, 1) // CS unit
	w.writeUint(0, 1) // display
	w.writeUint(0, 1) // DSC
	w.writeUint(0, 1) // band
	w.writeUint(0, 1) // message 22
	w.writeUint(0, 1) // assigned
	w.writeUint(boolBit(p.RAIM), 1)
	w.writeUint(0, 20) // radio status
	return w.bits
}

func decodePositionA(r *bitReader, t MessageType) (*PositionReport, error) {
	p := &PositionReport{Type: t}
	p.MMSI = uint32(r.readUint(30))
	p.Status = NavStatus(r.readUint(4))
	p.TurnRate = decodeROT(r.readInt(8))
	p.SpeedKn = decodeSpeed(r.readUint(10))
	p.Accuracy = r.readUint(1) == 1
	p.Position.Lon = decodeLon(r.readInt(28))
	p.Position.Lat = decodeLat(r.readInt(27))
	p.CourseDeg = decodeCourse(r.readUint(12))
	p.Heading = int(r.readUint(9))
	p.Second = int(r.readUint(6))
	r.readUint(2 + 3 + 1 + 19) // manoeuvre, spare, raim, radio — raim folded below
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}

func decodePositionB(r *bitReader) (*PositionReport, error) {
	p := &PositionReport{Type: TypePositionB, Status: StatusNotDefined}
	p.MMSI = uint32(r.readUint(30))
	r.readUint(8)
	p.SpeedKn = decodeSpeed(r.readUint(10))
	p.Accuracy = r.readUint(1) == 1
	p.Position.Lon = decodeLon(r.readInt(28))
	p.Position.Lat = decodeLat(r.readInt(27))
	p.CourseDeg = decodeCourse(r.readUint(12))
	p.Heading = int(r.readUint(9))
	p.Second = int(r.readUint(6))
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}

// encode writes the 424-bit type 5 layout.
func (s *StaticVoyage) encode() []byte {
	w := &bitWriter{}
	w.writeUint(uint64(TypeStaticVoyage), 6)
	w.writeUint(0, 2)
	w.writeUint(uint64(s.MMSI), 30)
	w.writeUint(0, 2) // AIS version
	w.writeUint(uint64(s.IMO), 30)
	w.writeString(s.CallSign, 7)
	w.writeString(s.ShipName, 20)
	w.writeUint(uint64(clampInt(int(s.ShipType), 0, 255)), 8)
	w.writeUint(uint64(clampInt(s.DimBow, 0, 511)), 9)
	w.writeUint(uint64(clampInt(s.DimStern, 0, 511)), 9)
	w.writeUint(uint64(clampInt(s.DimPort, 0, 63)), 6)
	w.writeUint(uint64(clampInt(s.DimStarb, 0, 63)), 6)
	w.writeUint(1, 4) // EPFD: GPS
	w.writeUint(uint64(clampInt(s.ETA.Month, 0, 12)), 4)
	w.writeUint(uint64(clampInt(s.ETA.Day, 0, 31)), 5)
	w.writeUint(uint64(clampInt(s.ETA.Hour, 0, 24)), 5)
	w.writeUint(uint64(clampInt(s.ETA.Minute, 0, 60)), 6)
	w.writeUint(uint64(clampInt(int(s.Draught*10+0.5), 0, 255)), 8)
	w.writeString(s.Destination, 20)
	w.writeUint(0, 1) // DTE
	w.writeUint(0, 1) // spare
	return w.bits
}

func decodeStaticVoyage(r *bitReader) (*StaticVoyage, error) {
	s := &StaticVoyage{}
	s.MMSI = uint32(r.readUint(30))
	r.readUint(2) // AIS version
	s.IMO = uint32(r.readUint(30))
	s.CallSign = r.readString(7)
	s.ShipName = r.readString(20)
	s.ShipType = ShipType(r.readUint(8))
	s.DimBow = int(r.readUint(9))
	s.DimStern = int(r.readUint(9))
	s.DimPort = int(r.readUint(6))
	s.DimStarb = int(r.readUint(6))
	r.readUint(4) // EPFD
	s.ETA.Month = int(r.readUint(4))
	s.ETA.Day = int(r.readUint(5))
	s.ETA.Hour = int(r.readUint(5))
	s.ETA.Minute = int(r.readUint(6))
	s.Draught = float64(r.readUint(8)) / 10
	s.Destination = r.readString(20)
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// encodeA returns the 160-bit type 24 part A layout (ship name).
func (s *StaticB) encodeA() []byte {
	w := &bitWriter{}
	w.writeUint(uint64(TypeStaticB), 6)
	w.writeUint(0, 2)
	w.writeUint(uint64(s.MMSI), 30)
	w.writeUint(0, 2) // part number A
	w.writeString(s.ShipName, 20)
	return w.bits
}

// encodeB24 returns the 168-bit type 24 part B layout.
func (s *StaticB) encodeB24() []byte {
	w := &bitWriter{}
	w.writeUint(uint64(TypeStaticB), 6)
	w.writeUint(0, 2)
	w.writeUint(uint64(s.MMSI), 30)
	w.writeUint(1, 2) // part number B
	w.writeUint(uint64(clampInt(int(s.ShipType), 0, 255)), 8)
	w.writeString("", 7) // vendor id
	w.writeString(s.CallSign, 7)
	w.writeUint(uint64(clampInt(s.DimBow, 0, 511)), 9)
	w.writeUint(uint64(clampInt(s.DimStern, 0, 511)), 9)
	w.writeUint(uint64(clampInt(s.DimPort, 0, 63)), 6)
	w.writeUint(uint64(clampInt(s.DimStarb, 0, 63)), 6)
	w.writeUint(0, 6) // spare
	return w.bits
}

func decodeStaticB(r *bitReader) (*StaticB, error) {
	s := &StaticB{}
	s.MMSI = uint32(r.readUint(30))
	part := r.readUint(2)
	if r.err != nil {
		return nil, r.err
	}
	if part == 0 {
		s.Part = 1
		s.ShipName = r.readString(20)
	} else {
		s.Part = 2
		s.ShipType = ShipType(r.readUint(8))
		r.readUint(42) // vendor
		s.CallSign = r.readString(7)
		s.DimBow = int(r.readUint(9))
		s.DimStern = int(r.readUint(9))
		s.DimPort = int(r.readUint(6))
		s.DimStarb = int(r.readUint(6))
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// DecodePayload decodes an unarmored AIS bit payload into one of the
// supported message structs.
func DecodePayload(bits []byte) (any, error) {
	return decodePayloadWith(bits, nil)
}

// decodePayloadWith is DecodePayload with an optional intern table for
// decoded text fields — the Decoder passes its own so repeated static
// rebroadcasts share string storage.
func decodePayloadWith(bits []byte, interned *stringTable) (any, error) {
	r := &bitReader{bits: bits, intern: interned}
	t := MessageType(r.readUint(6))
	r.readUint(2) // repeat indicator
	if r.err != nil {
		return nil, r.err
	}
	switch t {
	case TypePositionA, TypePositionAAssign, TypePositionAPolled:
		return decodePositionA(r, t)
	case TypeStaticVoyage:
		return decodeStaticVoyage(r)
	case TypePositionB:
		return decodePositionB(r)
	case TypeStaticB:
		return decodeStaticB(r)
	default:
		return nil, fmt.Errorf("ais: unsupported message type %d", t)
	}
}

// EncodePayload encodes a supported message struct into an AIS bit payload.
func EncodePayload(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case *PositionReport:
		return m.encode(), nil
	case *StaticVoyage:
		return m.encode(), nil
	case *StaticB:
		if m.Part == 2 {
			return m.encodeB24(), nil
		}
		return m.encodeA(), nil
	default:
		return nil, fmt.Errorf("ais: cannot encode %T", msg)
	}
}

// --- field codecs -----------------------------------------------------------

func encodeSpeed(kn float64) uint64 {
	if kn < 0 || kn >= SpeedNotAvailable {
		return 1023
	}
	v := int(kn*10 + 0.5)
	if v > 1022 {
		v = 1022
	}
	return uint64(v)
}

func decodeSpeed(v uint64) float64 {
	if v == 1023 {
		return SpeedNotAvailable
	}
	return float64(v) / 10
}

func encodeCourse(deg float64) uint64 {
	if deg < 0 || deg >= CourseNotAvailable {
		return 3600
	}
	v := int(deg*10 + 0.5)
	if v >= 3600 {
		v = 0
	}
	return uint64(v)
}

func decodeCourse(v uint64) float64 {
	if v >= 3600 {
		return CourseNotAvailable
	}
	return float64(v) / 10
}

func encodeLon(deg float64) int64 {
	if deg < -180 || deg > 180 {
		deg = LonNotAvailable
	}
	return int64(roundHalfAway(deg * 600000))
}

func decodeLon(v int64) float64 { return float64(v) / 600000 }

func encodeLat(deg float64) int64 {
	if deg < -90 || deg > 90 {
		deg = LatNotAvailable
	}
	return int64(roundHalfAway(deg * 600000))
}

func decodeLat(v int64) float64 { return float64(v) / 600000 }

// encodeROT encodes rate of turn in degrees/minute using the standard's
// 4.733·sqrt(rot) companding. 128 would mean "not available"; we encode 0
// for unavailable to keep the field NaN-free end to end.
func encodeROT(degPerMin float64) int64 {
	if degPerMin == 0 {
		return 0
	}
	sign := 1.0
	if degPerMin < 0 {
		sign = -1
		degPerMin = -degPerMin
	}
	v := 4.733 * math.Sqrt(degPerMin)
	if v > 126 {
		v = 126
	}
	return int64(sign * roundHalfAway(v))
}

func decodeROT(v int64) float64 {
	if v == 0 || v == -128 {
		return 0
	}
	sign := 1.0
	f := float64(v)
	if f < 0 {
		sign = -1
		f = -f
	}
	if f > 126 {
		f = 126
	}
	r := f / 4.733
	return sign * r * r
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func roundHalfAway(v float64) float64 {
	if v >= 0 {
		return float64(int64(v + 0.5))
	}
	return float64(int64(v - 0.5))
}
