package ais

import (
	"fmt"
	"testing"
)

// Decode-path allocation benchmarks (the ROADMAP hot-path item): together
// with BenchmarkDecodePosition (ais_test.go) — the single-fragment case
// that is the overwhelming bulk of AIS traffic — this pins the allocs/op
// that bound the single-worker decode ceiling the E14 submitter loop
// shows. The multi-fragment case exercises payload reassembly and the
// pending-fragment map. EXPERIMENTS.md records the before/after numbers.

func benchSentences(b *testing.B, msg any) []string {
	b.Helper()
	lines, err := EncodeSentences(msg, 3, "A")
	if err != nil {
		b.Fatal(err)
	}
	return lines
}

func BenchmarkDecodeMultiFragment(b *testing.B) {
	lines := benchSentences(b, &StaticVoyage{
		MMSI: 235098765, IMO: 9074729, CallSign: "GBXX7",
		ShipName: "EVER GIVEN", ShipType: 70, Destination: "ROTTERDAM",
		DimBow: 200, DimStern: 50, DimPort: 20, DimStarb: 20,
		Draught: 12.5,
	})
	if len(lines) < 2 {
		b.Fatalf("expected a multi-fragment message, got %d lines", len(lines))
	}
	d := NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range lines {
			if _, err := d.Decode(l); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestDecodeMultiFragmentAllocs pins the multi-fragment steady state at
// ≤4 allocs per message (down from 10 before text-field interning, and
// under the ROADMAP's ≤6 target): the decoded struct, the bit reader and
// the fragment linking key — the decoded strings are served from the
// decoder's intern table.
func TestDecodeMultiFragmentAllocs(t *testing.T) {
	lines, err := EncodeSentences(&StaticVoyage{
		MMSI: 235098765, IMO: 9074729, CallSign: "GBXX7",
		ShipName: "EVER GIVEN", ShipType: 70, Destination: "ROTTERDAM",
		DimBow: 200, DimStern: 50, DimPort: 20, DimStarb: 20,
		Draught: 12.5,
	}, 3, "A")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("expected a multi-fragment message, got %d lines", len(lines))
	}
	d := NewDecoder()
	var got *StaticVoyage
	decodeAll := func() {
		for _, l := range lines {
			msg, err := d.Decode(l)
			if err != nil {
				t.Fatal(err)
			}
			if msg != nil {
				got = msg.(*StaticVoyage)
			}
		}
	}
	decodeAll() // warm the intern table and reusable buffers
	if allocs := testing.AllocsPerRun(200, decodeAll); allocs > 4 {
		t.Fatalf("multi-fragment decode: %.1f allocs/op, want ≤4", allocs)
	}
	// Interning must not change the decoded values.
	if got.ShipName != "EVER GIVEN" || got.CallSign != "GBXX7" || got.Destination != "ROTTERDAM" {
		t.Fatalf("interned decode corrupted fields: %+v", got)
	}
}

// TestStringTableBounded pins the intern-table cap: a feed of
// never-repeating names must not grow the table past stringTableCap.
func TestStringTableBounded(t *testing.T) {
	var tab stringTable
	for i := 0; i < 3*stringTableCap; i++ {
		tab.lookup([]byte(fmt.Sprintf("VESSEL %d", i)))
	}
	if len(tab.m) > stringTableCap {
		t.Fatalf("intern table grew to %d entries (cap %d)", len(tab.m), stringTableCap)
	}
	// Past the cap, lookups still return correct (uninterned) strings.
	if s := tab.lookup([]byte("OVERFLOW NAME")); s != "OVERFLOW NAME" {
		t.Fatalf("post-cap lookup returned %q", s)
	}
}
