package ais

import (
	"testing"
)

// Decode-path allocation benchmarks (the ROADMAP hot-path item): together
// with BenchmarkDecodePosition (ais_test.go) — the single-fragment case
// that is the overwhelming bulk of AIS traffic — this pins the allocs/op
// that bound the single-worker decode ceiling the E14 submitter loop
// shows. The multi-fragment case exercises payload reassembly and the
// pending-fragment map. EXPERIMENTS.md records the before/after numbers.

func benchSentences(b *testing.B, msg any) []string {
	b.Helper()
	lines, err := EncodeSentences(msg, 3, "A")
	if err != nil {
		b.Fatal(err)
	}
	return lines
}

func BenchmarkDecodeMultiFragment(b *testing.B) {
	lines := benchSentences(b, &StaticVoyage{
		MMSI: 235098765, IMO: 9074729, CallSign: "GBXX7",
		ShipName: "EVER GIVEN", ShipType: 70, Destination: "ROTTERDAM",
		DimBow: 200, DimStern: 50, DimPort: 20, DimStarb: 20,
		Draught: 12.5,
	})
	if len(lines) < 2 {
		b.Fatalf("expected a multi-fragment message, got %d lines", len(lines))
	}
	d := NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range lines {
			if _, err := d.Decode(l); err != nil {
				b.Fatal(err)
			}
		}
	}
}
