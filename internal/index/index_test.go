package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

func randItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Pos: geo.Point{Lat: 30 + rng.Float64()*15, Lon: -5 + rng.Float64()*40},
			ID:  uint64(i),
		}
	}
	return items
}

func idsOf(items []Item) []uint64 {
	ids := make([]uint64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildAll constructs the three index variants over the same items.
func buildAll(items []Item) map[string]SpatialIndex {
	g := NewGridIndex(0.5)
	for _, it := range items {
		g.Insert(it)
	}
	return map[string]SpatialIndex{
		"scan":  &Scan{Items: items},
		"grid":  g,
		"rtree": BuildRTree(items),
	}
}

func TestSearchAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, 3000)
	idx := buildAll(items)
	scan := idx["scan"]
	for trial := 0; trial < 50; trial++ {
		c := geo.Point{Lat: 30 + rng.Float64()*15, Lon: -5 + rng.Float64()*40}
		r := geo.RectAround(c, 30000+rng.Float64()*300000)
		want := idsOf(scan.Search(r, nil))
		for name, ix := range idx {
			if name == "scan" {
				continue
			}
			got := idsOf(ix.Search(r, nil))
			if !equalIDs(got, want) {
				t.Fatalf("%s: search mismatch (%d vs %d results)", name, len(got), len(want))
			}
		}
	}
}

func TestNearestAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, 2000)
	idx := buildAll(items)
	scan := idx["scan"]
	for trial := 0; trial < 30; trial++ {
		p := geo.Point{Lat: 30 + rng.Float64()*15, Lon: -5 + rng.Float64()*40}
		k := 1 + rng.Intn(20)
		want := scan.Nearest(p, k)
		for name, ix := range idx {
			if name == "scan" {
				continue
			}
			got := ix.Nearest(p, k)
			if len(got) != len(want) {
				t.Fatalf("%s: kNN size %d, want %d", name, len(got), len(want))
			}
			// Distances must match (IDs may differ under exact ties).
			for i := range got {
				dg := geo.Distance(p, got[i].Pos)
				dw := geo.Distance(p, want[i].Pos)
				if dg-dw > 0.5 {
					t.Fatalf("%s: kNN[%d] dist %.2f, scan %.2f", name, i, dg, dw)
				}
			}
		}
	}
}

func TestNearestOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 500)
	for name, ix := range buildAll(items) {
		p := geo.Point{Lat: 37, Lon: 10}
		got := ix.Nearest(p, 25)
		for i := 1; i < len(got); i++ {
			if geo.Distance(p, got[i].Pos) < geo.Distance(p, got[i-1].Pos)-1e-9 {
				t.Errorf("%s: kNN results not sorted by distance", name)
			}
		}
	}
}

func TestNearestKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 7)
	for name, ix := range buildAll(items) {
		if got := ix.Nearest(geo.Point{Lat: 37, Lon: 10}, 100); len(got) != 7 {
			t.Errorf("%s: k>n should return all items, got %d", name, len(got))
		}
	}
}

func TestEmptyIndexes(t *testing.T) {
	for name, ix := range buildAll(nil) {
		if ix.Len() != 0 {
			t.Errorf("%s: empty index Len != 0", name)
		}
		if got := ix.Search(geo.Rect{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}, nil); len(got) != 0 {
			t.Errorf("%s: empty search should be empty", name)
		}
		if got := ix.Nearest(geo.Point{}, 5); len(got) != 0 {
			t.Errorf("%s: empty kNN should be empty", name)
		}
	}
}

func TestGridRemove(t *testing.T) {
	g := NewGridIndex(0.5)
	it := Item{Pos: geo.Point{Lat: 37, Lon: 10}, ID: 42}
	g.Insert(it)
	g.Insert(Item{Pos: geo.Point{Lat: 37.01, Lon: 10.01}, ID: 43})
	if !g.Remove(it.Pos, 42) {
		t.Fatal("remove should succeed")
	}
	if g.Remove(it.Pos, 42) {
		t.Fatal("double remove should fail")
	}
	if g.Len() != 1 {
		t.Errorf("len %d after remove", g.Len())
	}
	left := g.Search(geo.RectAround(it.Pos, 5000), nil)
	if len(left) != 1 || left[0].ID != 43 {
		t.Errorf("wrong item left: %+v", left)
	}
}

func TestRTreeSinglePointAndDuplicates(t *testing.T) {
	p := geo.Point{Lat: 37, Lon: 10}
	items := []Item{{Pos: p, ID: 1}, {Pos: p, ID: 2}, {Pos: p, ID: 3}}
	rt := BuildRTree(items)
	got := rt.Search(geo.RectAround(p, 100), nil)
	if len(got) != 3 {
		t.Errorf("duplicate positions: got %d", len(got))
	}
	nn := rt.Nearest(p, 2)
	if len(nn) != 2 {
		t.Errorf("kNN over duplicates: got %d", len(nn))
	}
}

func TestRTreeSearchWholeWorld(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 1234)
	rt := BuildRTree(items)
	got := rt.Search(geo.Rect{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}, nil)
	if len(got) != 1234 {
		t.Errorf("whole-world search returned %d of 1234", len(got))
	}
}

func benchIndexes(n int) (map[string]SpatialIndex, *rand.Rand) {
	rng := rand.New(rand.NewSource(6))
	return buildAll(randItems(rng, n)), rng
}

func BenchmarkSearchScan100k(b *testing.B)  { benchSearch(b, "scan") }
func BenchmarkSearchGrid100k(b *testing.B)  { benchSearch(b, "grid") }
func BenchmarkSearchRTree100k(b *testing.B) { benchSearch(b, "rtree") }

func benchSearch(b *testing.B, which string) {
	idx, rng := benchIndexes(100000)
	ix := idx[which]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geo.Point{Lat: 30 + rng.Float64()*15, Lon: -5 + rng.Float64()*40}
		_ = ix.Search(geo.RectAround(c, 50000), nil)
	}
}

func BenchmarkNearestScan100k(b *testing.B)  { benchNearest(b, "scan") }
func BenchmarkNearestGrid100k(b *testing.B)  { benchNearest(b, "grid") }
func BenchmarkNearestRTree100k(b *testing.B) { benchNearest(b, "rtree") }

func benchNearest(b *testing.B, which string) {
	idx, rng := benchIndexes(100000)
	ix := idx[which]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.Point{Lat: 30 + rng.Float64()*15, Lon: -5 + rng.Float64()*40}
		_ = ix.Nearest(p, 10)
	}
}

func BenchmarkBuildRTree100k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildRTree(items)
	}
}

func BenchmarkGridInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	items := randItems(rng, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	g := NewGridIndex(0.5)
	for i := 0; i < b.N; i++ {
		g.Insert(items[i%len(items)])
	}
}
