// Package index provides the spatial access methods the moving-object
// store and query layer use: a uniform grid index for streaming inserts
// and an STR-bulk-loaded R-tree for archival range and kNN queries, both
// behind one SpatialIndex interface so experiment E11 can compare them
// against a linear scan on equal terms.
package index

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/geo"
)

// Item is an indexed element: a position with an opaque 64-bit payload
// (vessel MMSI, record offset…).
type Item struct {
	Pos geo.Point
	ID  uint64
}

// SpatialIndex answers range and nearest-neighbour queries over items.
type SpatialIndex interface {
	// Search appends the items inside r to dst and returns it.
	Search(r geo.Rect, dst []Item) []Item
	// Nearest returns up to k items closest to p, nearest first.
	Nearest(p geo.Point, k int) []Item
	// Len returns the number of indexed items.
	Len() int
}

// --- linear scan baseline ---------------------------------------------------

// Scan is the no-index baseline: brute force over a slice.
type Scan struct {
	Items []Item
}

// Search implements SpatialIndex.
func (s *Scan) Search(r geo.Rect, dst []Item) []Item {
	for _, it := range s.Items {
		if r.Contains(it.Pos) {
			dst = append(dst, it)
		}
	}
	return dst
}

// Nearest implements SpatialIndex.
func (s *Scan) Nearest(p geo.Point, k int) []Item {
	type cand struct {
		it Item
		d  float64
	}
	cands := make([]cand, 0, len(s.Items))
	for _, it := range s.Items {
		cands = append(cands, cand{it, geo.Distance(p, it.Pos)})
	}
	sort.Slice(cands, func(i, j int) bool {
		//lint:ignore floateq sort tie-break: any consistent total order works, exactness not required
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].it.ID < cands[j].it.ID
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Item, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].it
	}
	return out
}

// Len implements SpatialIndex.
func (s *Scan) Len() int { return len(s.Items) }

// --- uniform grid index -----------------------------------------------------

// GridIndex hashes items into equal-angle cells: O(1) inserts, making it
// the right structure for the live (streaming) picture.
type GridIndex struct {
	grid  geo.Grid
	cells map[geo.CellID][]Item
	count int
}

// NewGridIndex returns a grid index with the given cell size in degrees.
func NewGridIndex(cellDeg float64) *GridIndex {
	return &GridIndex{grid: geo.NewGrid(cellDeg), cells: make(map[geo.CellID][]Item)}
}

// Insert adds an item.
func (g *GridIndex) Insert(it Item) {
	c := g.grid.Cell(it.Pos)
	g.cells[c] = append(g.cells[c], it)
	g.count++
}

// Remove deletes the first item with the given ID in the cell of pos;
// it reports whether something was removed.
func (g *GridIndex) Remove(pos geo.Point, id uint64) bool {
	c := g.grid.Cell(pos)
	items := g.cells[c]
	for i, it := range items {
		if it.ID == id {
			items[i] = items[len(items)-1]
			g.cells[c] = items[:len(items)-1]
			g.count--
			if len(g.cells[c]) == 0 {
				delete(g.cells, c)
			}
			return true
		}
	}
	return false
}

// Search implements SpatialIndex.
func (g *GridIndex) Search(r geo.Rect, dst []Item) []Item {
	for _, c := range g.grid.CellsInRect(r, nil) {
		for _, it := range g.cells[c] {
			if r.Contains(it.Pos) {
				dst = append(dst, it)
			}
		}
	}
	return dst
}

// Nearest implements SpatialIndex via expanding ring search over cells.
func (g *GridIndex) Nearest(p geo.Point, k int) []Item {
	if k <= 0 || g.count == 0 {
		return nil
	}
	type cand struct {
		it Item
		d  float64
	}
	var cands []cand
	// Expand the search radius until we have k candidates whose distances
	// are certain (ring radius covers the k-th best distance).
	radius := cellSizeMeters(g.grid.SizeDeg, p.Lat)
	for {
		rect := geo.RectAround(p, radius)
		cands = cands[:0]
		for _, c := range g.grid.CellsInRect(rect, nil) {
			for _, it := range g.cells[c] {
				cands = append(cands, cand{it, geo.Distance(p, it.Pos)})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			//lint:ignore floateq sort tie-break: any consistent total order works, exactness not required
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].it.ID < cands[j].it.ID
		})
		if len(cands) >= k && cands[k-1].d <= radius {
			break
		}
		if len(cands) >= g.count {
			break
		}
		radius *= 2
		if radius > 4e7 { // circumference of the Earth: everything covered
			break
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Item, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].it
	}
	return out
}

// Len implements SpatialIndex.
func (g *GridIndex) Len() int { return g.count }

func cellSizeMeters(sizeDeg, lat float64) float64 {
	m := geo.Radians(sizeDeg) * geo.EarthRadius
	if m < 1 {
		m = 1
	}
	return m
}

// --- STR-packed R-tree --------------------------------------------------------

const rtreeFanout = 16

// RTree is a static R-tree bulk-loaded with the Sort-Tile-Recursive
// packing: near-perfect node utilisation and tight bounding boxes, ideal
// for archival (read-mostly) data.
type RTree struct {
	root  *rnode
	count int
}

type rnode struct {
	bounds   geo.Rect
	children []*rnode // nil for leaves
	items    []Item   // set for leaves
}

// BuildRTree bulk-loads the items. The input slice is not retained.
func BuildRTree(items []Item) *RTree {
	t := &RTree{count: len(items)}
	if len(items) == 0 {
		return t
	}
	leaves := packLeaves(append([]Item(nil), items...))
	t.root = packUpward(leaves)
	return t
}

// packLeaves sorts items into vertical slices by longitude then latitude
// (the STR algorithm) and packs them into leaf nodes.
func packLeaves(items []Item) []*rnode {
	n := len(items)
	leafCount := (n + rtreeFanout - 1) / rtreeFanout
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * rtreeFanout

	sort.Slice(items, func(i, j int) bool { return items[i].Pos.Lon < items[j].Pos.Lon })
	var leaves []*rnode
	for s := 0; s < n; s += sliceSize {
		e := s + sliceSize
		if e > n {
			e = n
		}
		slice := items[s:e]
		sort.Slice(slice, func(i, j int) bool { return slice[i].Pos.Lat < slice[j].Pos.Lat })
		for ls := 0; ls < len(slice); ls += rtreeFanout {
			le := ls + rtreeFanout
			if le > len(slice) {
				le = len(slice)
			}
			leaf := &rnode{items: append([]Item(nil), slice[ls:le]...), bounds: geo.EmptyRect()}
			for _, it := range leaf.items {
				leaf.bounds = leaf.bounds.Extend(it.Pos)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packUpward packs nodes level by level until a single root remains.
func packUpward(nodes []*rnode) *rnode {
	for len(nodes) > 1 {
		sort.Slice(nodes, func(i, j int) bool {
			ci, cj := nodes[i].bounds.Center(), nodes[j].bounds.Center()
			//lint:ignore floateq pack-order comparator: any consistent total order works, exactness not required
			if ci.Lon != cj.Lon {
				return ci.Lon < cj.Lon
			}
			return ci.Lat < cj.Lat
		})
		var next []*rnode
		for s := 0; s < len(nodes); s += rtreeFanout {
			e := s + rtreeFanout
			if e > len(nodes) {
				e = len(nodes)
			}
			parent := &rnode{children: append([]*rnode(nil), nodes[s:e]...), bounds: geo.EmptyRect()}
			for _, c := range parent.children {
				parent.bounds = parent.bounds.Union(c.bounds)
			}
			next = append(next, parent)
		}
		nodes = next
	}
	return nodes[0]
}

// Search implements SpatialIndex.
func (t *RTree) Search(r geo.Rect, dst []Item) []Item {
	if t.root == nil {
		return dst
	}
	stack := []*rnode{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !n.bounds.Intersects(r) {
			continue
		}
		if n.children == nil {
			for _, it := range n.items {
				if r.Contains(it.Pos) {
					dst = append(dst, it)
				}
			}
			continue
		}
		if r.ContainsRect(n.bounds) {
			// Whole subtree qualifies: report without further tests.
			dst = reportAll(n, dst)
			continue
		}
		stack = append(stack, n.children...)
	}
	return dst
}

func reportAll(n *rnode, dst []Item) []Item {
	if n.children == nil {
		return append(dst, n.items...)
	}
	for _, c := range n.children {
		dst = reportAll(c, dst)
	}
	return dst
}

// nnEntry is a best-first search queue entry: either a node or an item.
type nnEntry struct {
	dist float64
	node *rnode
	item Item
	leaf bool
}

type nnQueue []nnEntry

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Nearest implements SpatialIndex with the classic best-first (Hjaltason–
// Samet) traversal: admissible rectangle lower bounds guarantee exactness.
func (t *RTree) Nearest(p geo.Point, k int) []Item {
	if t.root == nil || k <= 0 {
		return nil
	}
	q := &nnQueue{{dist: t.root.bounds.DistanceTo(p), node: t.root}}
	heap.Init(q)
	var out []Item
	for q.Len() > 0 && len(out) < k {
		e := heap.Pop(q).(nnEntry)
		if e.leaf {
			out = append(out, e.item)
			continue
		}
		n := e.node
		if n.children == nil {
			for _, it := range n.items {
				heap.Push(q, nnEntry{dist: geo.Distance(p, it.Pos), item: it, leaf: true})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(q, nnEntry{dist: c.bounds.DistanceTo(p), node: c})
		}
	}
	return out
}

// Len implements SpatialIndex.
func (t *RTree) Len() int { return t.count }
