package stream

import (
	"context"
	"time"
)

// Window is the result of a windowed aggregation for one key.
type Window[A any] struct {
	Key   uint64
	Start time.Time
	End   time.Time
	Agg   A
	Count int
}

// TumblingWindow groups events per key into fixed, non-overlapping
// event-time windows of the given size and emits one aggregate per (key,
// window) when the watermark passes the window end. The input must be
// (approximately) time-ordered — run Reorder first for disordered streams;
// residual disorder up to `allowed` is tolerated before a window closes.
//
// A late event whose window has already been flushed (window end behind
// the watermark maxSeen − allowed) is dropped and counted in m.Dropped:
// folding it in would re-open the bucket and emit a duplicate aggregate
// for the same (key, window). Late events whose window is still open are
// folded in normally — no data loss inside the tolerated disorder — and
// an event exactly AT the watermark is always kept, the same boundary
// rule Reorder applies. m may be nil.
func TumblingWindow[T, A any](
	ctx context.Context,
	in <-chan Event[T],
	size time.Duration,
	allowed time.Duration,
	m *Metrics,
	init func() A,
	fold func(A, Event[T]) A,
	buf int,
) <-chan Event[Window[A]] {
	out := make(chan Event[Window[A]], buf)
	type bucket struct {
		start time.Time
		agg   A
		count int
	}
	go func() {
		defer close(out)
		open := make(map[uint64]map[int64]*bucket) // key -> windowIndex -> bucket
		var maxSeen time.Time

		emit := func(key uint64, idx int64, b *bucket) bool {
			w := Window[A]{
				Key:   key,
				Start: b.start,
				End:   b.start.Add(size),
				Agg:   b.agg,
				Count: b.count,
			}
			select {
			case out <- Event[Window[A]]{Time: w.End, Key: key, Value: w}:
				if m != nil {
					m.Out.Add(1)
				}
				return true
			case <-ctx.Done():
				return false
			}
		}

		flushClosed := func() bool {
			watermark := maxSeen.Add(-allowed)
			for key, buckets := range open {
				for idx, b := range buckets {
					if b.start.Add(size).Before(watermark) {
						if !emit(key, idx, b) {
							return false
						}
						delete(buckets, idx)
					}
				}
				if len(buckets) == 0 {
					delete(open, key)
				}
			}
			return true
		}

		for e := range in {
			if m != nil {
				m.In.Add(1)
			}
			if e.Time.After(maxSeen) {
				maxSeen = e.Time
			}
			idx := e.Time.UnixNano() / int64(size)
			if end := time.Unix(0, idx*int64(size)).Add(size); end.Before(maxSeen.Add(-allowed)) {
				// The event's window end is behind the watermark, so the
				// bucket was already flushed (flushClosed uses the same
				// comparison); folding would re-open it and duplicate the
				// aggregate. Drop and count instead.
				if m != nil {
					m.Dropped.Add(1)
				}
				continue
			}
			buckets, ok := open[e.Key]
			if !ok {
				buckets = make(map[int64]*bucket)
				open[e.Key] = buckets
			}
			b, ok := buckets[idx]
			if !ok {
				b = &bucket{start: time.Unix(0, idx*int64(size)).UTC(), agg: init()}
				buckets[idx] = b
			}
			b.agg = fold(b.agg, e)
			b.count++
			if !flushClosed() {
				return
			}
		}
		// Input exhausted: flush every remaining window, keys and windows
		// in deterministic order would require sorting; order by window
		// start is enough for consumers, so emit per key ascending start.
		for key, buckets := range open {
			// Find ascending window indices.
			idxs := make([]int64, 0, len(buckets))
			for idx := range buckets {
				idxs = append(idxs, idx)
			}
			for i := 1; i < len(idxs); i++ {
				for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
					idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
				}
			}
			for _, idx := range idxs {
				if !emit(key, idx, buckets[idx]) {
					return
				}
			}
		}
	}()
	return out
}

// JoinPair carries one match of a temporal join: the left value with the
// nearest-in-time right value within the tolerance.
type JoinPair[L, R any] struct {
	Left  L
	Right R
	Skew  time.Duration // |left time - right time|
}

// TemporalJoin joins two keyed streams on equal keys and event times within
// tol: for every left event, the right event with the same key closest in
// time (within tol) is attached. Right events are buffered per key and
// garbage-collected behind the joint watermark. Left events with no match
// within tol are dropped (inner-join semantics); use TemporalJoinOuter for
// left-outer behaviour.
func TemporalJoin[L, R any](
	ctx context.Context,
	left <-chan Event[L],
	right <-chan Event[R],
	tol time.Duration,
	buf int,
) <-chan Event[JoinPair[L, R]] {
	return temporalJoin(ctx, left, right, tol, buf, false)
}

// TemporalJoinOuter is TemporalJoin with left-outer semantics: unmatched
// left events are emitted with the zero R and Skew = -1.
func TemporalJoinOuter[L, R any](
	ctx context.Context,
	left <-chan Event[L],
	right <-chan Event[R],
	tol time.Duration,
	buf int,
) <-chan Event[JoinPair[L, R]] {
	return temporalJoin(ctx, left, right, tol, buf, true)
}

func temporalJoin[L, R any](
	ctx context.Context,
	left <-chan Event[L],
	right <-chan Event[R],
	tol time.Duration,
	buf int,
	outer bool,
) <-chan Event[JoinPair[L, R]] {
	out := make(chan Event[JoinPair[L, R]], buf)
	go func() {
		defer close(out)
		rightByKey := make(map[uint64][]Event[R])
		var rightMax time.Time

		// Drain the right stream fully first when it is an archival/context
		// stream; to keep memory bounded for real streaming we interleave:
		// consume right eagerly whenever left would block. The simple and
		// correct approach for a single-process engine: read right fully if
		// its channel is closed quickly, else interleave via select.
		leftOpen, rightOpen := true, true
		var pendingLeft []Event[L]

		matchAndEmit := func(le Event[L]) bool {
			candidates := rightByKey[le.Key]
			bestIdx := -1
			var bestSkew time.Duration
			for i, re := range candidates {
				skew := le.Time.Sub(re.Time)
				if skew < 0 {
					skew = -skew
				}
				if skew <= tol && (bestIdx < 0 || skew < bestSkew) {
					bestIdx, bestSkew = i, skew
				}
			}
			var pair JoinPair[L, R]
			if bestIdx >= 0 {
				pair = JoinPair[L, R]{Left: le.Value, Right: candidates[bestIdx].Value, Skew: bestSkew}
			} else if outer {
				pair = JoinPair[L, R]{Left: le.Value, Skew: -1}
			} else {
				return true // inner join: drop unmatched
			}
			select {
			case out <- Event[JoinPair[L, R]]{Time: le.Time, Key: le.Key, Value: pair}:
				return true
			case <-ctx.Done():
				return false
			}
		}

		// A left event is safe to match once the right stream has advanced
		// past its time + tol (or closed).
		flushPending := func() bool {
			i := 0
			for ; i < len(pendingLeft); i++ {
				le := pendingLeft[i]
				if rightOpen && rightMax.Before(le.Time.Add(tol)) {
					break
				}
				if !matchAndEmit(le) {
					return false
				}
			}
			pendingLeft = pendingLeft[i:]
			return true
		}

		gcRight := func() {
			if len(pendingLeft) == 0 {
				return
			}
			horizon := pendingLeft[0].Time.Add(-tol)
			for k, evs := range rightByKey {
				keep := evs[:0]
				for _, re := range evs {
					if !re.Time.Before(horizon) {
						keep = append(keep, re)
					}
				}
				if len(keep) == 0 {
					delete(rightByKey, k)
				} else {
					rightByKey[k] = keep
				}
			}
		}

		for leftOpen || rightOpen {
			select {
			case le, ok := <-left:
				if !ok {
					leftOpen = false
					left = nil
					continue
				}
				pendingLeft = append(pendingLeft, le)
				if !flushPending() {
					return
				}
			case re, ok := <-right:
				if !ok {
					rightOpen = false
					right = nil
					if !flushPending() {
						return
					}
					continue
				}
				if re.Time.After(rightMax) {
					rightMax = re.Time
				}
				rightByKey[re.Key] = append(rightByKey[re.Key], re)
				if !flushPending() {
					return
				}
				gcRight()
			case <-ctx.Done():
				return
			}
		}
		flushPending()
	}()
	return out
}
