package stream

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func ts(sec int) time.Time {
	return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func intEvents(times ...int) []Event[int] {
	out := make([]Event[int], len(times))
	for i, t := range times {
		out[i] = Event[int]{Time: ts(t), Key: uint64(t % 3), Value: t}
	}
	return out
}

func TestMapFilter(t *testing.T) {
	ctx := context.Background()
	in := Run(ctx, FromSlice(intEvents(1, 2, 3, 4, 5, 6)), 4)
	doubled := Map(ctx, in, func(v int) int { return v * 2 }, 4)
	evens := Filter(ctx, doubled, func(v int) bool { return v%4 == 0 }, 4)
	got := Collect(evens)
	if len(got) != 3 {
		t.Fatalf("expected 3 events, got %d", len(got))
	}
	for _, e := range got {
		if e.Value%4 != 0 {
			t.Errorf("filter leaked %d", e.Value)
		}
	}
}

func TestKeyByAndPartitionConsistency(t *testing.T) {
	ctx := context.Background()
	events := make([]Event[int], 200)
	for i := range events {
		events[i] = Event[int]{Time: ts(i), Value: i}
	}
	in := Run(ctx, FromSlice(events), 16)
	keyed := KeyBy(ctx, in, func(v int) uint64 { return uint64(v % 7) }, 16)
	parts := Partition(ctx, keyed, 4, 16)

	var mu sync.Mutex
	keyToPart := map[uint64]int{}
	var wg sync.WaitGroup
	for pi, p := range parts {
		wg.Add(1)
		go func(pi int, p <-chan Event[int]) {
			defer wg.Done()
			for e := range p {
				mu.Lock()
				if prev, ok := keyToPart[e.Key]; ok && prev != pi {
					t.Errorf("key %d seen in partitions %d and %d", e.Key, prev, pi)
				}
				keyToPart[e.Key] = pi
				mu.Unlock()
			}
		}(pi, p)
	}
	wg.Wait()
	if len(keyToPart) != 7 {
		t.Errorf("expected 7 distinct keys, got %d", len(keyToPart))
	}
}

func TestPartitionPreservesPerKeyOrder(t *testing.T) {
	ctx := context.Background()
	events := make([]Event[int], 300)
	for i := range events {
		events[i] = Event[int]{Time: ts(i), Key: uint64(i % 5), Value: i}
	}
	in := Run(ctx, FromSlice(events), 8)
	parts := Partition(ctx, in, 3, 8)
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p <-chan Event[int]) {
			defer wg.Done()
			last := map[uint64]int{}
			for e := range p {
				if prev, ok := last[e.Key]; ok && e.Value <= prev {
					t.Errorf("per-key order broken: %d after %d", e.Value, prev)
				}
				last[e.Key] = e.Value
			}
		}(p)
	}
	wg.Wait()
}

func TestMergeDeliversAll(t *testing.T) {
	ctx := context.Background()
	a := Run(ctx, FromSlice(intEvents(1, 2, 3)), 2)
	b := Run(ctx, FromSlice(intEvents(4, 5)), 2)
	got := Collect(Merge(ctx, []<-chan Event[int]{a, b}, 4))
	if len(got) != 5 {
		t.Fatalf("merge lost events: %d", len(got))
	}
}

func TestParallelProcessesAll(t *testing.T) {
	ctx := context.Background()
	events := make([]Event[int], 1000)
	for i := range events {
		events[i] = Event[int]{Time: ts(i), Key: uint64(i), Value: i}
	}
	in := Run(ctx, FromSlice(events), 64)
	out := Collect(Parallel(ctx, in, func(v int) int { return v + 1 }, 8, 64))
	if len(out) != 1000 {
		t.Fatalf("parallel lost events: %d", len(out))
	}
	sum := 0
	for _, e := range out {
		sum += e.Value
	}
	want := 1000 * 999 / 2 // sum of 0..999
	want += 1000           // +1 each
	if sum != want {
		t.Errorf("sum %d, want %d", sum, want)
	}
}

func TestReorderSortsWithinDelay(t *testing.T) {
	ctx := context.Background()
	// Events shuffled within a 5 s disorder bound.
	events := []Event[int]{
		{Time: ts(3), Value: 3},
		{Time: ts(1), Value: 1},
		{Time: ts(2), Value: 2},
		{Time: ts(6), Value: 6},
		{Time: ts(4), Value: 4},
		{Time: ts(5), Value: 5},
		{Time: ts(9), Value: 9},
		{Time: ts(8), Value: 8},
	}
	var m Metrics
	in := Run(ctx, FromSlice(events), 4)
	got := Collect(Reorder(ctx, in, 5*time.Second, &m, 4))
	if len(got) != len(events) {
		t.Fatalf("reorder lost events: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatalf("output not time ordered at %d", i)
		}
	}
	s := m.Snapshot()
	if s.In != int64(len(events)) || s.Dropped != 0 {
		t.Errorf("metrics: %+v", s)
	}
}

func TestReorderDropsTooLate(t *testing.T) {
	ctx := context.Background()
	events := []Event[int]{
		{Time: ts(10), Value: 10},
		{Time: ts(20), Value: 20},
		{Time: ts(5), Value: 5}, // 15 s late against max seen 20, delay 8 s: drop
	}
	var m Metrics
	in := Run(ctx, FromSlice(events), 4)
	got := Collect(Reorder(ctx, in, 8*time.Second, &m, 4))
	for _, e := range got {
		if e.Value == 5 {
			t.Error("too-late event should have been dropped")
		}
	}
	if m.Snapshot().Dropped != 1 {
		t.Errorf("dropped = %d, want 1", m.Snapshot().Dropped)
	}
}

func TestReorderPropertyRandomised(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 200
		events := make([]Event[int], n)
		for i := range events {
			// Base time i seconds, jitter ±3 s: disorder bounded by 6 s.
			jitter := rng.Intn(7) - 3
			events[i] = Event[int]{Time: ts(i + jitter), Value: i}
		}
		in := Run(ctx, FromSlice(events), 16)
		got := Collect(Reorder(ctx, in, 10*time.Second, nil, 16))
		if len(got) != n {
			t.Fatalf("trial %d: lost events (%d/%d)", trial, len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Time.Before(got[i-1].Time) {
				t.Fatalf("trial %d: disorder in output", trial)
			}
		}
	}
}

func TestTumblingWindowCounts(t *testing.T) {
	ctx := context.Background()
	// Key 1: events at 1,2,3 (window 0) and 65 (window 1).
	events := []Event[int]{
		{Time: ts(1), Key: 1, Value: 1},
		{Time: ts(2), Key: 1, Value: 2},
		{Time: ts(3), Key: 1, Value: 3},
		{Time: ts(65), Key: 1, Value: 65},
		{Time: ts(30), Key: 2, Value: 30},
	}
	SortEventsByTime(events)
	in := Run(ctx, FromSlice(events), 4)
	wins := Collect(TumblingWindow(ctx, in, time.Minute, 0, nil,
		func() int { return 0 },
		func(acc int, e Event[int]) int { return acc + e.Value },
		4))
	byKeyStart := map[[2]int64]Window[int]{}
	for _, w := range wins {
		byKeyStart[[2]int64{int64(w.Value.Key), w.Value.Start.Unix()}] = w.Value
	}
	if len(wins) != 3 {
		t.Fatalf("expected 3 windows, got %d", len(wins))
	}
	w0 := byKeyStart[[2]int64{1, ts(0).Unix()}]
	if w0.Count != 3 || w0.Agg != 6 {
		t.Errorf("window 0 for key 1: %+v", w0)
	}
	w1 := byKeyStart[[2]int64{1, ts(60).Unix()}]
	if w1.Count != 1 || w1.Agg != 65 {
		t.Errorf("window 1 for key 1: %+v", w1)
	}
	w2 := byKeyStart[[2]int64{2, ts(0).Unix()}]
	if w2.Count != 1 || w2.Agg != 30 {
		t.Errorf("window 0 for key 2: %+v", w2)
	}
}

func TestTumblingWindowEmitsOnWatermark(t *testing.T) {
	ctx := context.Background()
	in := make(chan Event[int])
	out := TumblingWindow(ctx, in, time.Minute, 0, nil,
		func() int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
		4)
	in <- Event[int]{Time: ts(10), Key: 1, Value: 1}
	in <- Event[int]{Time: ts(50), Key: 1, Value: 1}
	// Nothing should be emitted yet (window not past watermark).
	select {
	case w := <-out:
		t.Fatalf("premature window emission: %+v", w)
	case <-time.After(20 * time.Millisecond):
	}
	// An event in the next window closes the first.
	in <- Event[int]{Time: ts(125), Key: 1, Value: 1}
	select {
	case w := <-out:
		if w.Value.Count != 2 {
			t.Errorf("window count = %d, want 2", w.Value.Count)
		}
	case <-time.After(time.Second):
		t.Fatal("window not emitted after watermark passed")
	}
	close(in)
	rest := Collect(out)
	if len(rest) != 1 {
		t.Errorf("expected 1 final window, got %d", len(rest))
	}
}

func TestTemporalJoinNearest(t *testing.T) {
	ctx := context.Background()
	left := []Event[string]{
		{Time: ts(10), Key: 1, Value: "L10"},
		{Time: ts(20), Key: 1, Value: "L20"},
		{Time: ts(30), Key: 2, Value: "L30"},
	}
	right := []Event[string]{
		{Time: ts(9), Key: 1, Value: "R9"},
		{Time: ts(19), Key: 1, Value: "R19"},
		{Time: ts(21), Key: 1, Value: "R21"},
		{Time: ts(500), Key: 2, Value: "Rfar"},
	}
	l := Run(ctx, FromSlice(left), 4)
	r := Run(ctx, FromSlice(right), 4)
	got := Collect(TemporalJoin(ctx, l, r, 5*time.Second, 4))
	if len(got) != 2 {
		t.Fatalf("expected 2 joined pairs, got %d: %+v", len(got), got)
	}
	byLeft := map[string]JoinPair[string, string]{}
	for _, e := range got {
		byLeft[e.Value.Left] = e.Value
	}
	if byLeft["L10"].Right != "R9" {
		t.Errorf("L10 joined to %s, want R9", byLeft["L10"].Right)
	}
	// L20 is 1 s from both R19 and R21; either is acceptable but skew must be 1 s.
	if byLeft["L20"].Skew != time.Second {
		t.Errorf("L20 skew = %v", byLeft["L20"].Skew)
	}
}

func TestTemporalJoinOuterKeepsUnmatched(t *testing.T) {
	ctx := context.Background()
	left := []Event[string]{{Time: ts(10), Key: 1, Value: "lonely"}}
	right := []Event[string]{{Time: ts(400), Key: 1, Value: "far"}}
	l := Run(ctx, FromSlice(left), 2)
	r := Run(ctx, FromSlice(right), 2)
	got := Collect(TemporalJoinOuter(ctx, l, r, 5*time.Second, 2))
	if len(got) != 1 {
		t.Fatalf("outer join should keep unmatched left: %d", len(got))
	}
	if got[0].Value.Skew != -1 || got[0].Value.Right != "" {
		t.Errorf("unmatched marker wrong: %+v", got[0].Value)
	}
}

func TestContextCancellationStopsPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// An infinite source.
	src := func(ctx context.Context, out chan<- Event[int]) {
		i := 0
		for {
			select {
			case out <- Event[int]{Time: ts(i), Value: i}:
				i++
			case <-ctx.Done():
				return
			}
		}
	}
	in := Run(ctx, src, 1)
	out := Map(ctx, in, func(v int) int { return v }, 1)
	<-out // ensure flowing
	cancel()
	// The pipeline must terminate: drain with a timeout.
	done := make(chan struct{})
	go func() {
		for range out {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline did not stop after cancellation")
	}
}

func BenchmarkMapThroughput(b *testing.B) {
	ctx := context.Background()
	events := make([]Event[int], b.N)
	for i := range events {
		events[i] = Event[int]{Time: ts(i), Value: i}
	}
	b.ReportAllocs()
	b.ResetTimer()
	in := Run(ctx, FromSlice(events), 1024)
	out := Map(ctx, in, func(v int) int { return v * 2 }, 1024)
	for range out {
	}
}

func BenchmarkReorder(b *testing.B) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	events := make([]Event[int], b.N)
	for i := range events {
		events[i] = Event[int]{Time: ts(i + rng.Intn(5)), Value: i}
	}
	b.ReportAllocs()
	b.ResetTimer()
	in := Run(ctx, FromSlice(events), 1024)
	out := Reorder(ctx, in, 10*time.Second, nil, 1024)
	for range out {
	}
}

func BenchmarkTumblingWindow(b *testing.B) {
	ctx := context.Background()
	events := make([]Event[int], b.N)
	for i := range events {
		events[i] = Event[int]{Time: ts(i / 10), Key: uint64(i % 100), Value: i}
	}
	b.ReportAllocs()
	b.ResetTimer()
	in := Run(ctx, FromSlice(events), 1024)
	out := TumblingWindow(ctx, in, time.Minute, 0, nil,
		func() int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
		1024)
	for range out {
	}
}
