package stream

import (
	"context"
	"testing"
	"time"
)

// Regression: Partition with n <= 0 used to panic with a divide-by-zero on
// the key-hash modulo; it must clamp to a single partition instead.
func TestPartitionClampsNonPositive(t *testing.T) {
	for _, n := range []int{0, -3} {
		ctx := context.Background()
		in := Run(ctx, FromSlice(intEvents(1, 2, 3)), 4)
		parts := Partition(ctx, in, n, 4)
		if len(parts) != 1 {
			t.Fatalf("Partition(n=%d): got %d partitions, want 1", n, len(parts))
		}
		if got := Collect(parts[0]); len(got) != 3 {
			t.Errorf("Partition(n=%d): lost events, got %d want 3", n, len(got))
		}
	}
}

// Regression companion: Parallel routes through Partition and must clamp
// the worker count the same way.
func TestParallelClampsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		ctx := context.Background()
		in := Run(ctx, FromSlice(intEvents(1, 2, 3, 4)), 4)
		out := Parallel(ctx, in, func(v int) int { return v * 2 }, n, 4)
		if got := Collect(out); len(got) != 4 {
			t.Errorf("Parallel(n=%d): got %d events, want 4", n, len(got))
		}
	}
}

// Regression: a late event arriving after its window was flushed used to
// silently re-open the bucket and emit a second aggregate for the same
// (key, window). It must be dropped and counted instead.
func TestTumblingWindowDropsLateDuplicate(t *testing.T) {
	ctx := context.Background()
	events := []Event[int]{
		{Time: ts(5), Key: 1, Value: 5},
		{Time: ts(15), Key: 1, Value: 15}, // watermark 15 flushes window [0,10)
		{Time: ts(7), Key: 1, Value: 7},   // late: window [0,10) already emitted
	}
	var m Metrics
	in := Run(ctx, FromSlice(events), 4)
	wins := Collect(TumblingWindow(ctx, in, 10*time.Second, 0, &m,
		func() int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
		4))
	perWindow := map[int64]int{} // window start unix -> emissions
	for _, w := range wins {
		perWindow[w.Value.Start.Unix()]++
	}
	if len(wins) != 2 {
		t.Fatalf("expected 2 windows, got %d: %+v", len(wins), wins)
	}
	for start, n := range perWindow {
		if n != 1 {
			t.Errorf("window starting %d emitted %d times, want 1", start, n)
		}
	}
	s := m.Snapshot()
	if s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
	if s.In != 3 || s.Out != 2 {
		t.Errorf("metrics In=%d Out=%d, want In=3 Out=2", s.In, s.Out)
	}
}

// Reorder watermark boundary: an event exactly AT the watermark is kept;
// only events strictly behind it are dropped.
func TestReorderWatermarkBoundary(t *testing.T) {
	const delay = 10 * time.Second
	watermark := ts(20).Add(-delay) // maxSeen 20 − delay
	cases := []struct {
		name     string
		late     time.Time
		wantKept bool
	}{
		{"exactly at watermark", watermark, true},
		{"1ns before watermark", watermark.Add(-time.Nanosecond), false},
		{"1s before watermark", watermark.Add(-time.Second), false},
		{"1ns after watermark", watermark.Add(time.Nanosecond), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			events := []Event[int]{
				{Time: ts(0), Key: 1, Value: 0},
				{Time: ts(20), Key: 1, Value: 20}, // advances maxSeen to 20
				{Time: tc.late, Key: 1, Value: -1},
			}
			var m Metrics
			in := Run(ctx, FromSlice(events), 4)
			got := Collect(Reorder(ctx, in, delay, &m, 4))
			kept := false
			for _, e := range got {
				if e.Value == -1 {
					kept = true
				}
			}
			if kept != tc.wantKept {
				t.Errorf("Reorder kept=%v, want %v", kept, tc.wantKept)
			}
			wantDropped := int64(1)
			if tc.wantKept {
				wantDropped = 0
			}
			if m.Snapshot().Dropped != wantDropped {
				t.Errorf("Dropped = %d, want %d", m.Snapshot().Dropped, wantDropped)
			}
		})
	}
}

// TumblingWindow late-event boundary: a late event is dropped only when
// its window has already been flushed (window end behind the watermark);
// late events into still-open windows fold in, and — identically to
// Reorder — an event exactly AT the watermark is kept, never dropped.
func TestTumblingWindowLateBoundary(t *testing.T) {
	const (
		size  = 5 * time.Second
		delay = 10 * time.Second
	)
	watermark := ts(20).Add(-delay) // maxSeen 20 − delay = ts(10)
	cases := []struct {
		name     string
		late     time.Time
		wantKept bool
	}{
		// Window [0,5) ends at 5 < watermark 10: flushed, so late
		// arrivals into it are dropped.
		{"into flushed window", ts(4), false},
		{"1ns before flushed window end", ts(5).Add(-time.Nanosecond), false},
		// Window [5,10) ends exactly at the watermark: not yet flushed
		// (flush requires end strictly before watermark), so a late event
		// behind the watermark still folds in — no data loss.
		{"behind watermark, open window", ts(7), true},
		// The shared boundary rule with Reorder: at-watermark is kept.
		{"exactly at watermark", watermark, true},
		{"1ns after watermark", watermark.Add(time.Nanosecond), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			events := []Event[int]{
				{Time: ts(20), Key: 1, Value: 20}, // maxSeen 20 up front
				{Time: tc.late, Key: 1, Value: -1},
			}
			var m Metrics
			in := Run(ctx, FromSlice(events), 4)
			wins := Collect(TumblingWindow(ctx, in, size, delay, &m,
				func() int { return 0 },
				func(acc int, e Event[int]) int { return acc + 1 },
				4))
			kept := false
			for _, w := range wins {
				if !w.Value.Start.After(tc.late) && w.Value.Start.Add(size).After(tc.late) && w.Value.Count > 0 {
					kept = true
				}
			}
			if kept != tc.wantKept {
				t.Errorf("late event kept=%v, want %v (windows: %+v)", kept, tc.wantKept, wins)
			}
			wantDropped := int64(1)
			if tc.wantKept {
				wantDropped = 0
			}
			if m.Snapshot().Dropped != wantDropped {
				t.Errorf("Dropped = %d, want %d", m.Snapshot().Dropped, wantDropped)
			}
		})
	}
}
