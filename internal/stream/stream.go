// Package stream is a typed, single-process streaming dataflow engine with
// the spatio-temporal primitives the paper (§2.2–2.3) finds missing from
// general platforms: event-time windows keyed by vessel, watermarks with
// bounded out-of-order tolerance, cross-stream temporal joins, and
// partitioned parallelism. It is deliberately small — operators are
// functions, channels carry the data, and backpressure is the natural
// blocking of full channels.
package stream

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is the unit flowing through a pipeline: a timestamped, keyed value.
type Event[T any] struct {
	Time  time.Time
	Key   uint64 // partition key (MMSI, cell id…); 0 if unkeyed
	Value T
}

// Source produces events into a channel until the context is cancelled or
// the input is exhausted.
type Source[T any] func(ctx context.Context, out chan<- Event[T])

// FromSlice returns a Source replaying the given events in order.
func FromSlice[T any](events []Event[T]) Source[T] {
	return func(ctx context.Context, out chan<- Event[T]) {
		for _, e := range events {
			select {
			case out <- e:
			case <-ctx.Done():
				return
			}
		}
	}
}

// Metrics counts events through a pipeline stage.
type Metrics struct {
	In      atomic.Int64
	Out     atomic.Int64
	Dropped atomic.Int64 // late events beyond the watermark
}

// Snapshot returns a plain-struct copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{In: m.In.Load(), Out: m.Out.Load(), Dropped: m.Dropped.Load()}
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	In, Out, Dropped int64
}

// Map transforms each event's value, preserving time and key.
func Map[T, U any](ctx context.Context, in <-chan Event[T], f func(T) U, buf int) <-chan Event[U] {
	out := make(chan Event[U], buf)
	go func() {
		defer close(out)
		for e := range in {
			select {
			case out <- Event[U]{Time: e.Time, Key: e.Key, Value: f(e.Value)}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Filter forwards events whose value satisfies pred.
func Filter[T any](ctx context.Context, in <-chan Event[T], pred func(T) bool, buf int) <-chan Event[T] {
	out := make(chan Event[T], buf)
	go func() {
		defer close(out)
		for e := range in {
			if !pred(e.Value) {
				continue
			}
			select {
			case out <- e:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// KeyBy re-keys events with the given key extractor.
func KeyBy[T any](ctx context.Context, in <-chan Event[T], key func(T) uint64, buf int) <-chan Event[T] {
	out := make(chan Event[T], buf)
	go func() {
		defer close(out)
		for e := range in {
			e.Key = key(e.Value)
			select {
			case out <- e:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Partition splits a stream into n substreams by key hash; events with the
// same key always land in the same partition, preserving per-key order.
// n <= 0 is clamped to a single partition rather than panicking on the
// modulo.
func Partition[T any](ctx context.Context, in <-chan Event[T], n, buf int) []<-chan Event[T] {
	if n < 1 {
		n = 1
	}
	outs := make([]chan Event[T], n)
	ros := make([]<-chan Event[T], n)
	for i := range outs {
		outs[i] = make(chan Event[T], buf)
		ros[i] = outs[i]
	}
	go func() {
		defer func() {
			for _, o := range outs {
				close(o)
			}
		}()
		for e := range in {
			idx := int(mix64(e.Key) % uint64(n))
			select {
			case outs[idx] <- e:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ros
}

// Merge combines several streams into one. Output order across inputs is
// arbitrary; per-input order is preserved.
func Merge[T any](ctx context.Context, ins []<-chan Event[T], buf int) <-chan Event[T] {
	out := make(chan Event[T], buf)
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		go func(in <-chan Event[T]) {
			defer wg.Done()
			for e := range in {
				select {
				case out <- e:
				case <-ctx.Done():
					return
				}
			}
		}(in)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Parallel applies f to each event in n workers and merges the results.
// Per-key ordering is NOT preserved; use Partition+Map when it must be.
// n <= 0 is clamped to one worker.
func Parallel[T, U any](ctx context.Context, in <-chan Event[T], f func(T) U, n, buf int) <-chan Event[U] {
	if n < 1 {
		n = 1
	}
	parts := Partition(ctx, in, n, buf)
	outs := make([]<-chan Event[U], n)
	for i, p := range parts {
		outs[i] = Map(ctx, p, f, buf)
	}
	return Merge(ctx, outs, buf)
}

// Collect drains a stream into a slice (a test and batch-analysis helper).
func Collect[T any](in <-chan Event[T]) []Event[T] {
	var out []Event[T]
	for e := range in {
		out = append(out, e)
	}
	return out
}

// Run connects a source to a fresh channel and returns it.
func Run[T any](ctx context.Context, src Source[T], buf int) <-chan Event[T] {
	out := make(chan Event[T], buf)
	go func() {
		defer close(out)
		src(ctx, out)
	}()
	return out
}

// ShardOf returns the partition index Partition assigns to key among n
// shards (n <= 0 treated as 1). Exported so out-of-band routing — e.g. a
// caller pre-grouping a batch per shard — lands on the same partition the
// dataflow would pick.
func ShardOf(key uint64, n int) int {
	if n < 1 {
		n = 1
	}
	return int(mix64(key) % uint64(n))
}

// mix64 is a SplitMix64 finaliser: a cheap, well-distributed hash for
// partitioning keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Reorder buffers events and releases them in event-time order, tolerating
// out-of-order arrival up to maxDelay: the watermark trails the maximum
// seen event time by maxDelay, and events older than the watermark at
// arrival are dropped (counted in Metrics.Dropped). This is the standard
// bounded-disorder watermark model.
func Reorder[T any](ctx context.Context, in <-chan Event[T], maxDelay time.Duration, m *Metrics, buf int) <-chan Event[T] {
	out := make(chan Event[T], buf)
	go func() {
		defer close(out)
		var heap eventHeap[T]
		var maxSeen time.Time
		emit := func(e Event[T]) bool {
			select {
			case out <- e:
				if m != nil {
					m.Out.Add(1)
				}
				return true
			case <-ctx.Done():
				return false
			}
		}
		for e := range in {
			if m != nil {
				m.In.Add(1)
			}
			if e.Time.After(maxSeen) {
				maxSeen = e.Time
			}
			watermark := maxSeen.Add(-maxDelay)
			if e.Time.Before(watermark) {
				if m != nil {
					m.Dropped.Add(1)
				}
				continue
			}
			heap.push(e)
			for heap.len() > 0 && heap.min().Time.Before(watermark) {
				if !emit(heap.pop()) {
					return
				}
			}
		}
		// Input exhausted: flush everything in order.
		for heap.len() > 0 {
			if !emit(heap.pop()) {
				return
			}
		}
	}()
	return out
}

// eventHeap is a binary min-heap on event time.
type eventHeap[T any] struct {
	items []Event[T]
}

func (h *eventHeap[T]) len() int      { return len(h.items) }
func (h *eventHeap[T]) min() Event[T] { return h.items[0] }
func (h *eventHeap[T]) push(e Event[T]) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].Time.Before(h.items[parent].Time) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap[T]) pop() Event[T] {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.items[l].Time.Before(h.items[smallest].Time) {
			smallest = l
		}
		if r < len(h.items) && h.items[r].Time.Before(h.items[smallest].Time) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// SortEventsByTime sorts a slice of events in place by event time (stable).
func SortEventsByTime[T any](events []Event[T]) {
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].Time.Before(events[j].Time)
	})
}
