package ingest

import (
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tstore"
)

// TestEngineMemoryBudgetEvictsAndAnswers runs the engine with an
// aggressive memory budget and a fast eviction loop, then checks (1) the
// archive really dropped below the budget, (2) the full query surface
// still answers over the partially evicted shards with the exact point
// counts ingest archived, and (3) the tier stats surface the eviction.
func TestEngineMemoryBudgetEvictsAndAnswers(t *testing.T) {
	run := simTraffic(t, 33, 80, 30*time.Minute)
	objects, err := store.NewFSObjects(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(tstore.PointBytes) * 500 // far below the run's archive
	_, e := runEngine(t, run, Config{
		Pipeline:       pipelineCfg(run, 60),
		Shards:         4,
		MemoryBudget:   budget,
		TierObjects:    objects,
		TierCheckEvery: time.Millisecond, // evict continuously during ingest
	})
	e.Wait()
	if err := e.FlushErr(); err != nil {
		t.Fatalf("storage stages errored: %v", err)
	}

	// The loop stopped with Wait; one explicit pass covers whatever the
	// final ingest batches appended after its last tick.
	e.Tier().Check()
	ts := e.TierStats()
	if ts.Evictions == 0 || ts.EvictedPoints == 0 {
		t.Fatalf("budget %d never triggered eviction: %+v", budget, ts)
	}
	if ts.ResidentBytes > budget {
		t.Fatalf("resident bytes %d exceed the budget %d after Wait: %+v", ts.ResidentBytes, budget, ts)
	}

	// The whole read surface over the evicted shards: totals must match
	// what ingest archived, evicted or not.
	archived := int(e.Snapshot().Archived)
	res, err := e.Query(query.Request{Kind: query.KindStats})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points != archived {
		t.Fatalf("stats over evicted shards report %d points, archived %d", res.Stats.Points, archived)
	}
	var local *query.SourceStats
	for i := range res.Stats.Sources {
		if res.Stats.Sources[i].Name == "live" {
			local = &res.Stats.Sources[i]
		}
	}
	if local == nil || local.EvictedVessels == 0 {
		t.Fatalf("stats must report evicted vessels, got %+v", res.Stats.Sources)
	}
	if local.ResidentPoints+ts.EvictedPoints != archived {
		t.Fatalf("resident %d + evicted %d != archived %d",
			local.ResidentPoints, ts.EvictedPoints, archived)
	}

	// A trajectory read pages an evicted vessel back in full.
	world := query.Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	live, err := e.Query(query.Request{Kind: query.KindLivePicture, Box: &world})
	if err != nil {
		t.Fatal(err)
	}
	if live.Count == 0 {
		t.Fatal("live picture empty over evicted shards")
	}
	mmsi := live.States[0].MMSI
	tr, err := e.Query(query.Request{Kind: query.KindTrajectory, MMSI: mmsi})
	if err != nil {
		t.Fatal(err)
	}
	direct := e.Sharded().ShardFor(mmsi).Store.Trajectory(mmsi)
	if tr.Count != len(direct.Points) || tr.Count == 0 {
		t.Fatalf("trajectory over evicted shard returned %d points, store holds %d", tr.Count, len(direct.Points))
	}
}
