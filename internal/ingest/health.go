package ingest

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tstore"
)

// This file is the engine's incident surface: the flightSink wrapper
// that lands stage failures in the flight ring, and the readiness
// aggregation /readyz serves. Liveness needs nothing from the engine —
// a process that answers is alive; readiness is the judgement call, so
// it reads the same per-layer signals the flight recorder narrates.

// flightSink wraps a tee'd stage sink (track, anomaly) so its first
// failure lands in the flight ring. The error itself still latches in
// the shard store's SinkErr — this wrapper adds the when, not the what.
// One event per stage lifetime: a failing stage fails every batch, and
// the ring should hold the incident's onset, not its echo.
type flightSink struct {
	sink    tstore.Sink
	flight  *obs.Flight
	layer   string
	errored atomic.Bool
}

func (s *flightSink) Append(recs ...model.VesselState) error {
	err := s.sink.Append(recs...)
	if err != nil && s.errored.CompareAndSwap(false, true) {
		s.flight.Record(obs.FlightError, s.layer, "stage append failed",
			obs.FS("error", err.Error()))
	}
	return err
}

// flightWrap interposes a flightSink when the engine has a flight
// recorder; without one the stage attaches bare.
func (e *Engine) flightWrap(s tstore.Sink, layer string) tstore.Sink {
	if e.cfg.Flight == nil {
		return s
	}
	return &flightSink{sink: s, flight: e.cfg.Flight, layer: layer}
}

// HealthOptions tunes the readiness thresholds. The zero value is
// usable: every bound defaults at Health.
type HealthOptions struct {
	// FlushBacklogMax is the flush-queue depth at which the engine stops
	// being ready (default: the flush stage's configured queue bound —
	// the depth at which appends actually block).
	FlushBacklogMax int
	// UploadQueueMaxAge bounds how old the oldest queued WAL upload may
	// grow before readiness flips (default 30s). Age, not depth: a deep
	// queue that drains young is a burst; an old head is a blocked
	// remote.
	UploadQueueMaxAge time.Duration
}

// Health builds the engine's readiness surface — the checks GET /readyz
// evaluates on every scrape:
//
//   - flush-backlog (critical): the persistence queue is below the
//     depth at which appends block.
//   - upload-queue (critical): the oldest queued WAL migration is
//     younger than the bound, so a blocked object store flips readiness
//     — and recovery flips it back, unlike the latched UploadErr.
//   - storage-errors (informational): no flush/WAL/tier error has
//     latched (FlushErr). Informational because these degrade rather
//     than stop the daemon, and a latched error would pin not-ready
//     forever.
//   - peer:<name> (informational): the federation peer answered its
//     last query. A degraded peer narrows answers; it does not make
//     this daemon unservable.
//   - hub-drops (informational): no subscriber lost updates since the
//     previous evaluation.
//
// Call after Start (the checks read stages Start wires). The returned
// surface is live: each evaluation re-reads the engine.
func (e *Engine) Health(opt HealthOptions) *obs.Health {
	if opt.UploadQueueMaxAge <= 0 {
		opt.UploadQueueMaxAge = 30 * time.Second
	}
	h := obs.NewHealth()
	if e.flusher != nil {
		f := e.flusher
		maxDepth := opt.FlushBacklogMax
		if maxDepth <= 0 {
			maxDepth = f.QueueBound()
		}
		h.Register(obs.HealthCheck{Name: "flush-backlog", Critical: true,
			Check: func() (bool, string) {
				depth := f.Depth()
				return depth < maxDepth, fmt.Sprintf("depth=%d bound=%d", depth, maxDepth)
			}})
	}
	if d, ok := e.cfg.Backend.(*store.Disk); ok {
		maxAge := opt.UploadQueueMaxAge
		h.Register(obs.HealthCheck{Name: "upload-queue", Critical: true,
			Check: func() (bool, string) {
				depth, oldest := d.UploadQueue()
				if depth == 0 {
					return true, "empty"
				}
				return oldest <= maxAge,
					fmt.Sprintf("depth=%d oldest=%s", depth, oldest.Round(time.Millisecond))
			}})
	}
	h.Register(obs.HealthCheck{Name: "storage-errors",
		Check: func() (bool, string) {
			if err := e.FlushErr(); err != nil {
				return false, err.Error()
			}
			return true, ""
		}})
	for _, src := range e.cfg.Peers {
		p, ok := src.(interface {
			Name() string
			PeerErr() error
		})
		if !ok {
			continue
		}
		h.Register(obs.HealthCheck{Name: "peer:" + p.Name(),
			Check: func() (bool, string) {
				if err := p.PeerErr(); err != nil {
					return false, err.Error()
				}
				return true, ""
			}})
	}
	lastDropped := new(atomic.Int64)
	h.Register(obs.HealthCheck{Name: "hub-drops",
		Check: func() (bool, string) {
			cur := e.hub.Metrics.Dropped.Load()
			prev := lastDropped.Swap(cur)
			if cur > prev {
				return false, fmt.Sprintf("%d updates dropped since last check", cur-prev)
			}
			return true, fmt.Sprintf("total=%d", cur)
		}})
	return h
}
