package ingest

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stream"
)

func simTraffic(t testing.TB, seed int64, vessels int, dur time.Duration) *sim.Run {
	t.Helper()
	cfg := sim.Config{Seed: seed, NumVessels: vessels, Duration: dur, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// alertKey flattens an alert into a comparable multiset element.
func alertKey(a events.Alert) string {
	return fmt.Sprintf("%s|%d|%d|%s|%d", a.Kind, a.MMSI, a.Other, a.At.Format(time.RFC3339Nano), a.Severity)
}

func sortedKeys(alerts []events.Alert) []string {
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = alertKey(a)
	}
	sort.Strings(out)
	return out
}

func runEngine(t testing.TB, run *sim.Run, cfg Config) ([]events.Alert, *Engine) {
	t.Helper()
	e := New(cfg)
	e.Start(context.Background())
	var (
		collected []events.Alert
		done      = make(chan struct{})
	)
	go func() {
		defer close(done)
		for ev := range e.Alerts() {
			collected = append(collected, ev.Value)
		}
	}()
	ctx := context.Background()
	for i := range run.Positions {
		o := &run.Positions[i]
		if !e.Ingest(ctx, o.At, &o.Report) {
			t.Fatal("ingest refused mid-stream")
		}
	}
	e.Close()
	<-done
	return collected, e
}

// The acceptance criterion: the async engine must produce the same alert
// multiset as sequential Pipeline.Ingest over the same replayed input.
// With one shard the comparison is against a single sequential pipeline.
func TestEngineMatchesSequentialPipeline(t *testing.T) {
	run := simTraffic(t, 42, 80, 45*time.Minute)
	pcfg := core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60}

	seq := core.New(pcfg)
	var want []events.Alert
	for i := range run.Positions {
		o := &run.Positions[i]
		want = append(want, seq.Ingest(o.At, &o.Report)...)
	}

	got, e := runEngine(t, run, Config{Pipeline: pcfg, Shards: 1, BatchSize: 32})
	if len(got) == 0 {
		t.Fatal("engine produced no alerts; scenario should raise some")
	}
	gk, wk := sortedKeys(got), sortedKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("alert multiset sizes differ: engine %d, sequential %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("alert multisets diverge at %d: engine %q vs sequential %q", i, gk[i], wk[i])
		}
	}
	if out := e.Metrics.Out.Load(); out != int64(len(run.Positions)) {
		t.Errorf("Metrics.Out = %d, want %d", out, len(run.Positions))
	}
}

// With n shards the engine must match the synchronous Sharded path — both
// route by the same hash, and per-vessel order is preserved through the
// partition, so per-shard pipelines see identical input sequences.
func TestEngineMatchesSyncSharded(t *testing.T) {
	run := simTraffic(t, 7, 80, 45*time.Minute)
	pcfg := core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60}
	const shards = 4

	sync := core.NewSharded(pcfg, shards)
	var want []events.Alert
	for i := range run.Positions {
		o := &run.Positions[i]
		want = append(want, sync.Ingest(o.At, &o.Report)...)
	}

	got, e := runEngine(t, run, Config{Pipeline: pcfg, Shards: shards, BatchSize: 32})
	gk, wk := sortedKeys(got), sortedKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("alert multiset sizes differ: engine %d, sync sharded %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("alert multisets diverge at %d: engine %q vs sync %q", i, gk[i], wk[i])
		}
	}
	// And per-shard ingest counts must agree shard by shard.
	for i := range sync.Shards {
		w := sync.Shards[i].Metrics.Ingested.Load()
		g := e.Sharded().Shards[i].Metrics.Ingested.Load()
		if w != g {
			t.Errorf("shard %d ingested %d via engine, %d via sync", i, g, w)
		}
	}
}

// Batched ingest must be behaviour-preserving on its own, independent of
// the dataflow.
func TestIngestBatchMatchesIngest(t *testing.T) {
	run := simTraffic(t, 11, 40, 30*time.Minute)
	pcfg := core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60}

	one := core.New(pcfg)
	var want []events.Alert
	for i := range run.Positions {
		o := &run.Positions[i]
		want = append(want, one.Ingest(o.At, &o.Report)...)
	}

	batched := core.New(pcfg)
	var got []events.Alert
	var batch []core.TimedReport
	for i := range run.Positions {
		o := &run.Positions[i]
		batch = append(batch, core.TimedReport{At: o.At, Rep: &o.Report})
		if len(batch) == 17 || i == len(run.Positions)-1 {
			got = append(got, batched.IngestBatch(batch)...)
			batch = batch[:0]
		}
	}
	gk, wk := sortedKeys(got), sortedKeys(want)
	if len(gk) != len(wk) {
		t.Fatalf("batched alerts %d, per-call alerts %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("batched ingest diverges at %d: %q vs %q", i, gk[i], wk[i])
		}
	}
	if a, b := one.Metrics.Snapshot().Archived, batched.Metrics.Snapshot().Archived; a != b {
		t.Errorf("archived differ: %d vs %d", a, b)
	}
}

// The NMEA front-end: encode a simulated feed into AIVDM sentences
// (multi-fragment type 5s included), push it through StartLines with
// several decode workers, and check nothing is lost or double-counted.
func TestStartLinesDecodesFullFeed(t *testing.T) {
	run := simTraffic(t, 3, 40, 30*time.Minute)
	pcfg := core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60}

	at := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	var feed []Line
	addMsg := func(msg any, id int, ch string) {
		lines, err := ais.EncodeSentences(msg, id, ch)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lines {
			at = at.Add(10 * time.Millisecond)
			feed = append(feed, Line{At: at, Text: l})
		}
	}
	for i := range run.Positions {
		addMsg(&run.Positions[i].Report, i, "A")
	}
	multiFragment := 0
	for i := range run.Statics {
		lines, _ := ais.EncodeSentences(&run.Statics[i].Msg, i, "B")
		if len(lines) > 1 {
			multiFragment++
		}
		addMsg(&run.Statics[i].Msg, i, "B")
	}
	if multiFragment == 0 {
		t.Fatal("scenario produced no multi-fragment sentences; test loses its point")
	}

	e := New(Config{Pipeline: pcfg, Shards: 4, DecodeWorkers: 3})
	ctx := context.Background()
	e.Start(ctx)
	var statics sync.WaitGroup
	var staticMu sync.Mutex
	staticSeen := 0
	statics.Add(len(run.Statics))
	onStatic := func(_ time.Time, _ *ais.StaticVoyage, _ []quality.Issue) {
		staticMu.Lock()
		staticSeen++
		staticMu.Unlock()
		statics.Done()
	}
	lines := make(chan Line, 64)
	e.StartLines(ctx, lines, onStatic)
	go func() {
		for _, l := range feed {
			lines <- l
		}
		close(lines)
	}()
	alerts := 0
	for range e.Alerts() {
		alerts++
	}
	statics.Wait()

	dm := e.DecodeMetrics.Snapshot()
	if dm.In != int64(len(feed)) {
		t.Errorf("decode In = %d, want %d lines", dm.In, len(feed))
	}
	wantMsgs := int64(len(run.Positions) + len(run.Statics))
	if dm.Out != wantMsgs {
		t.Errorf("decode Out = %d, want %d messages", dm.Out, wantMsgs)
	}
	if dm.Dropped != 0 {
		t.Errorf("decode Dropped = %d, want 0 on a clean feed", dm.Dropped)
	}
	if staticSeen != len(run.Statics) {
		t.Errorf("static callback saw %d, want %d", staticSeen, len(run.Statics))
	}
	snap := e.Snapshot()
	if snap.Ingested != int64(len(run.Positions)) {
		t.Errorf("pipelines ingested %d, want %d", snap.Ingested, len(run.Positions))
	}
	if snap.StaticChecked != int64(len(run.Statics)) {
		t.Errorf("pipelines checked %d statics, want %d", snap.StaticChecked, len(run.Statics))
	}
	st := e.DecodeStats()
	if st.Messages != int(wantMsgs) || st.Malformed != 0 {
		t.Errorf("decoder stats %+v, want %d messages, 0 malformed", st, wantMsgs)
	}
	if alerts == 0 {
		t.Error("no alerts out of an anomaly-laden feed")
	}
}

// Parallel decode must not reorder the feed: the resequencer restores
// line-arrival order, so any decode worker count produces exactly the
// pipeline results of a single sequential decoder — per-vessel event-time
// order is what the kinematic checker, synopsis filter and dark detector
// all assume.
func TestStartLinesDeterministicAcrossWorkerCounts(t *testing.T) {
	run := simTraffic(t, 9, 50, 30*time.Minute)
	pcfg := core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60}
	at := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	var feed []Line
	for i := range run.Positions {
		lines, err := ais.EncodeSentences(&run.Positions[i].Report, i, "A")
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lines {
			at = at.Add(10 * time.Millisecond)
			feed = append(feed, Line{At: at, Text: l})
		}
	}
	var alertSets [][]string
	var archived []int64
	for _, workers := range []int{1, 4} {
		e := New(Config{Pipeline: pcfg, Shards: 2, DecodeWorkers: workers})
		ctx := context.Background()
		e.Start(ctx)
		lines := make(chan Line, 64)
		e.StartLines(ctx, lines, nil)
		go func() {
			for _, l := range feed {
				lines <- l
			}
			close(lines)
		}()
		var alerts []events.Alert
		for ev := range e.Alerts() {
			alerts = append(alerts, ev.Value)
		}
		alertSets = append(alertSets, sortedKeys(alerts))
		archived = append(archived, e.Snapshot().Archived)
	}
	if archived[0] != archived[1] {
		t.Errorf("archived counts differ across decode worker counts: %d vs %d", archived[0], archived[1])
	}
	if len(alertSets[0]) != len(alertSets[1]) {
		t.Fatalf("alert multisets differ in size: %d vs %d", len(alertSets[0]), len(alertSets[1]))
	}
	for i := range alertSets[0] {
		if alertSets[0][i] != alertSets[1][i] {
			t.Fatalf("alert multisets diverge at %d: %q vs %q", i, alertSets[0][i], alertSets[1][i])
		}
	}
}

// Malformed lines must be dropped and counted, never wedging the dataflow.
func TestStartLinesCountsMalformed(t *testing.T) {
	e := New(Config{Shards: 2, DecodeWorkers: 2})
	ctx := context.Background()
	e.Start(ctx)
	lines := make(chan Line, 8)
	e.StartLines(ctx, lines, nil)
	at := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	lines <- Line{At: at, Text: "garbage"}
	lines <- Line{At: at, Text: "!AIVDM,1,1,,A,xx*00"} // bad checksum
	close(lines)
	for range e.Alerts() {
	}
	dm := e.DecodeMetrics.Snapshot()
	if dm.Dropped != 2 || dm.Out != 0 {
		t.Errorf("decode metrics %+v, want 2 dropped, 0 out", dm)
	}
}

func TestFragmentKey(t *testing.T) {
	cases := []struct {
		line  string
		key   string
		multi bool
	}{
		{"!AIVDM,1,1,,A,payload,0*00", "", false},
		{"!AIVDM,2,1,3,B,payload,0*00", "3,B", true},
		{"!AIVDM,2,2,3,B,rest,2*00", "3,B", true},
		{"!AIVDM,12,7,5,A,payload,0*00", "5,A", true},
		{"garbage", "", false},
		{"!AIVDM,2,1", "", false},
	}
	for _, tc := range cases {
		key, multi := fragmentKey(tc.line)
		if key != tc.key || multi != tc.multi {
			t.Errorf("fragmentKey(%q) = (%q, %v), want (%q, %v)", tc.line, key, multi, tc.key, tc.multi)
		}
	}
}

// The per-shard depth gauges must exist for every shard and only ever
// report legal values; with a tiny buffer the engine still completes
// under backpressure.
func TestBackpressureTinyBuffers(t *testing.T) {
	run := simTraffic(t, 5, 30, 20*time.Minute)
	pcfg := core.Config{Zones: run.Config.World.Zones}
	reg := obs.NewRegistry()
	e := New(Config{Pipeline: pcfg, Shards: 3, ShardBuf: 1, BatchSize: 2, AlertBuf: 1, Obs: reg})
	e.Start(context.Background())
	done := make(chan int)
	go func() {
		n := 0
		for range e.Alerts() {
			n++
		}
		done <- n
	}()
	ctx := context.Background()
	for i := range run.Positions {
		o := &run.Positions[i]
		e.Ingest(ctx, o.At, &o.Report)
		if i%1000 == 0 {
			for s := 0; s < 3; s++ {
				v, ok := reg.Value("ingest_shard_depth", "shard", strconv.Itoa(s))
				if !ok {
					t.Fatalf("ingest_shard_depth{shard=%d} not registered", s)
				}
				if v < 0 || v > 1 {
					t.Fatalf("shard %d depth %g out of [0,1]", s, v)
				}
			}
		}
	}
	e.Close()
	<-done
	e.Wait()
	if out := e.Metrics.Out.Load(); out != int64(len(run.Positions)) {
		t.Errorf("processed %d, want %d", out, len(run.Positions))
	}
}

// ShardOf consistency across layers is what makes engine-vs-sync
// equivalence hold; pin it.
func TestEnginePartitioningMatchesShardFor(t *testing.T) {
	e := New(Config{Shards: 5})
	for mmsi := uint32(200000000); mmsi < 200000200; mmsi++ {
		if got, want := e.Sharded().ShardIndex(mmsi), stream.ShardOf(uint64(mmsi), 5); got != want {
			t.Fatalf("ShardIndex(%d) = %d, stream.ShardOf = %d", mmsi, got, want)
		}
	}
}

// TestEngineQueryMatchesDirectReads pins the engine's unified read
// surface: Query answers must equal the direct tstore reads against the
// engine's own shards — the query layer adds routing and merging, never
// different data.
func TestEngineQueryMatchesDirectReads(t *testing.T) {
	run := simTraffic(t, 11, 40, 20*time.Minute)
	pcfg := core.Config{Zones: run.Config.World.Zones}
	_, e := runEngine(t, run, Config{Pipeline: pcfg, Shards: 4})
	e.Wait() // quiesce: all reports ingested

	sharded := e.Sharded()
	bounds := run.Config.World.Bounds

	// Trajectory per vessel == owning shard's archive.
	checked := 0
	for _, p := range sharded.Shards {
		for _, mmsi := range p.Store.MMSIs() {
			res, err := e.Query(query.Request{Kind: query.KindTrajectory, MMSI: mmsi})
			if err != nil {
				t.Fatal(err)
			}
			want := p.Store.Trajectory(mmsi).Points
			if len(res.States) != len(want) {
				t.Fatalf("vessel %d: query %d points, store %d", mmsi, len(res.States), len(want))
			}
			for i, s := range res.States {
				if s.MMSI != want[i].MMSI || !s.At.Equal(want[i].At) {
					t.Fatalf("vessel %d point %d diverges", mmsi, i)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no vessels to check")
	}

	// Live picture == merged per-shard InRect.
	res, err := e.Query(query.Request{Kind: query.KindLivePicture, Box: ptrBox(query.BoxOf(bounds))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != sharded.LiveCount() {
		t.Fatalf("live picture %d vessels, LiveCount %d", res.Count, sharded.LiveCount())
	}

	// Stats == summed pipeline state.
	stats, err := e.Query(query.Request{Kind: query.KindStats})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range sharded.Shards {
		total += p.Store.Len()
	}
	if stats.Stats.Points != total {
		t.Fatalf("stats points %d, want %d", stats.Stats.Points, total)
	}
	if stats.Stats.Alerts != len(sharded.Alerts()) {
		t.Fatalf("stats alerts %d, want %d", stats.Stats.Alerts, len(sharded.Alerts()))
	}
}

func ptrBox(b query.Box) *query.Box { return &b }

// TestQueryDuringIngest exercises the daemon's serving mode: the query
// surface answering concurrently with the dataflow (run under -race in
// CI). Answers must be internally consistent snapshots, not torn reads.
func TestQueryDuringIngest(t *testing.T) {
	run := simTraffic(t, 31, 20, 20*time.Minute)
	pcfg := core.Config{Zones: run.Config.World.Zones}
	e := New(Config{Pipeline: pcfg, Shards: 3})
	ctx := context.Background()
	e.Start(ctx)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range e.Alerts() {
		}
	}()
	stop := make(chan struct{})
	var queried sync.WaitGroup
	box := query.BoxOf(run.Config.World.Bounds)
	for w := 0; w < 3; w++ {
		queried.Add(1)
		go func() {
			defer queried.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, req := range []query.Request{
					{Kind: query.KindLivePicture, Box: &box},
					{Kind: query.KindSpaceTime, Box: &box},
					{Kind: query.KindStats},
					{Kind: query.KindNearest, Lat: 38, Lon: 15, K: 3},
					{Kind: query.KindSituation, Box: &box, Rows: 4, Cols: 8},
				} {
					if _, err := e.Query(req); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for i := range run.Positions {
		o := &run.Positions[i]
		e.Ingest(ctx, o.At, &o.Report)
	}
	e.Close()
	<-drained
	close(stop)
	queried.Wait()
	// After quiescing, the surface must report the complete picture.
	res, err := e.Query(query.Request{Kind: query.KindStats})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range e.Sharded().Shards {
		total += p.Store.Len()
	}
	if res.Stats.Points != total {
		t.Fatalf("post-quiesce stats %d points, shards hold %d", res.Stats.Points, total)
	}
}
