package ingest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/store"
)

// gatedObjects parks every Put on a gate until the test releases it — a
// stand-in for a blocked object store (same shape as the store package's
// own gated fixture, which is unexported).
type gatedObjects struct {
	store.ObjectStore
	gate    chan struct{} // closed to release parked Puts
	entered chan struct{} // one token per Put that reached the gate
}

func (g *gatedObjects) Put(key string, data []byte) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.ObjectStore.Put(key, data)
}

// TestReadyzFlipsOnUploadStall is the induced-failure acceptance test:
// a blocked object-store Put ages the WAL upload queue past the
// readiness bound, GET /readyz flips to 503 naming the upload-queue
// check, and releasing the store drains the queue and flips it back —
// readiness recovers, unlike the latched error surfaces.
func TestReadyzFlipsOnUploadStall(t *testing.T) {
	run := simTraffic(t, 17, 20, 20*time.Minute)
	objects, err := store.NewFSObjects(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gated := &gatedObjects{ObjectStore: objects, gate: make(chan struct{}), entered: make(chan struct{}, 64)}
	arch, err := store.Open(store.Config{
		Dir: t.TempDir(), SegmentBytes: 4 << 10, Sync: store.SyncNever,
		CompactEvery: -1, Remote: gated,
	})
	if err != nil {
		t.Fatal(err)
	}

	e := New(Config{
		Pipeline: pipelineCfg(run, 60),
		Shards:   2,
		Backend:  arch.Backend,
		Flush:    store.FlushConfig{Queue: 512, Batch: 64},
	})
	ctx := context.Background()
	e.Start(ctx)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range e.Alerts() {
		}
	}()

	srv := query.NewServer(e)
	srv.ServeHealth(e.Health(HealthOptions{UploadQueueMaxAge: 50 * time.Millisecond}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	readyz := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v struct {
			Ready  bool `json:"ready"`
			Checks []struct {
				Name string `json:"name"`
				OK   bool   `json:"ok"`
			} `json:"checks"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		for _, c := range v.Checks {
			if !c.OK {
				return resp.StatusCode, c.Name
			}
		}
		return resp.StatusCode, ""
	}

	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("fresh daemon /readyz = %d, want 200", code)
	}

	// Ingest enough to seal segments; the uploader parks in the gated Put
	// and the queue head starts aging.
	for i := range run.Positions {
		o := &run.Positions[i]
		if !e.Ingest(ctx, o.At, &o.Report) {
			t.Fatal("ingest refused mid-stream")
		}
	}
	e.Close()
	<-drained
	e.Wait()
	select {
	case <-gated.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("uploader never reached the object store")
	}

	// The queue head ages past the 50ms bound: readiness must flip, and
	// the verdict must name the failing check.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, failing := readyz()
		if code == http.StatusServiceUnavailable {
			if failing != "upload-queue" {
				t.Fatalf("/readyz 503 blames %q, want upload-queue", failing)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped not-ready under a blocked object store")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Release the store: the queue drains and readiness recovers.
	close(gated.gate)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if code, _ := readyz(); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			depth, oldest := arch.Backend.UploadQueue()
			t.Fatalf("/readyz never recovered after release (queue depth=%d oldest=%v)", depth, oldest)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHealthChecksRegistered pins the readiness surface's composition: a
// disk-backed, flushing, federated engine registers the per-layer checks
// the ISSUE names, and the zero-value options get usable defaults.
func TestHealthChecksRegistered(t *testing.T) {
	run := simTraffic(t, 19, 10, 10*time.Minute)
	arch, err := store.Open(store.Config{Dir: t.TempDir(), SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	peer := query.NewClient("http://127.0.0.1:0")
	peer.PeerName = "peerX"
	e := New(Config{
		Pipeline: pipelineCfg(run, 60),
		Shards:   1,
		Backend:  arch.Backend,
		Flush:    store.FlushConfig{Queue: 16, Batch: 8},
		Peers:    []query.Source{peer},
	})
	e.Start(context.Background())
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range e.Alerts() {
		}
	}()
	defer func() { e.Close(); <-drained; e.Wait() }()

	v := e.Health(HealthOptions{}).Evaluate()
	got := map[string]bool{}
	for _, c := range v.Checks {
		got[c.Name] = c.Critical
	}
	for name, critical := range map[string]bool{
		"flush-backlog":  true,
		"upload-queue":   true,
		"storage-errors": false,
		"peer:peerX":     false,
		"hub-drops":      false,
	} {
		crit, ok := got[name]
		if !ok {
			t.Errorf("missing check %q (have %v)", name, v.Checks)
			continue
		}
		if crit != critical {
			t.Errorf("check %q critical=%v, want %v", name, crit, critical)
		}
	}
	if !v.Ready {
		t.Fatalf("healthy engine evaluates not-ready: %+v", v)
	}
}
