package ingest

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tstore"
)

// TestMetricsScrapeSmoke is the CI scrape smoke: a fully wired engine —
// persistence backend, tiered archive, hub, query surface — ingesting
// while /metrics, /healthz, /readyz and /debug/flight are scraped
// concurrently, then a final scrape asserted to carry metric families
// from all five instrumented layers plus the build-info series. The
// concurrent scrapes double as the scrape-under-ingest race test (run
// under -race in CI).
func TestMetricsScrapeSmoke(t *testing.T) {
	run := simTraffic(t, 7, 40, 20*time.Minute)
	objects, err := store.NewFSObjects(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, time.Now())
	flight := obs.NewFlight(1024)
	e := New(Config{
		Pipeline:       pipelineCfg(run, 60),
		Shards:         2,
		Backend:        store.NewMem(),
		MemoryBudget:   int64(tstore.PointBytes) * 200,
		TierObjects:    objects,
		TierCheckEvery: time.Millisecond,
		Obs:            reg,
		Flight:         flight,
	})
	ctx := context.Background()
	e.Start(ctx)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range e.Alerts() {
		}
	}()

	srv := query.NewServer(e)
	srv.ServeMetrics(reg)
	srv.ServeHealth(e.Health(HealthOptions{}))
	srv.ServeFlight(flight)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Scrape continuously while ingest runs: the registry, the health
	// surface and the flight ring must stay consistent (no torn reads,
	// no panics) under full write load.
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/healthz", "/readyz", "/debug/flight"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				// /readyz may honestly report 503 while ingest outruns the
				// flush stage; every other surface must stay 200.
				if resp.StatusCode != http.StatusOK &&
					!(path == "/readyz" && resp.StatusCode == http.StatusServiceUnavailable) {
					t.Errorf("%s status %d", path, resp.StatusCode)
					return
				}
			}
		}
	}()
	for i := range run.Positions {
		o := &run.Positions[i]
		if !e.Ingest(ctx, o.At, &o.Report) {
			t.Fatal("ingest refused mid-stream")
		}
	}
	e.Close()
	<-drained
	e.Wait()
	close(stop)
	scrapes.Wait()

	// Populate the query families, then check one HTTP query round-trips
	// a trace.
	if _, err := e.Query(query.Request{Kind: query.KindStats}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	var res query.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Trace) == 0 {
		t.Fatal("GET /v1/stats?trace=1 returned no trace spans")
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		// ingest
		"ingest_messages_in_total", "ingest_batch_append_ns", "ingest_shard_depth",
		// store
		"store_flush_out_total", "store_flush_batch_ns",
		// tier
		"tier_evictions_total", "tier_resident_points", "tier_pageback_ns",
		// query
		"query_requests_total", "query_latency_ns", "query_source_ns",
		// hub
		"hub_published_total", "hub_subscribers",
		// build identity
		"maritime_build_info", "maritime_uptime_seconds",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	// Quiesced, the engine is ready, and the flight ring replays the
	// run's transitions (tier evictions at minimum, given the 200-point
	// budget) as well-formed JSON.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("quiesced /readyz = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/debug/flight?layer=tier")
	if err != nil {
		t.Fatal(err)
	}
	var flightDoc []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&flightDoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(flightDoc) == 0 {
		t.Error("flight ring recorded no tier transitions under a 200-point budget")
	}

	// The JSON twin serves the same registry.
	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := vars["ingest_messages_in_total"]; !ok {
		t.Errorf("/debug/vars missing ingest_messages_in_total (got %d series)", len(vars))
	}
}

// TestTracePropagationAllKinds asserts every query kind records its
// per-source fan-out spans and its merge/assemble stage when Trace is
// requested — and records nothing when it is not.
func TestTracePropagationAllKinds(t *testing.T) {
	run := simTraffic(t, 9, 30, 20*time.Minute)
	_, e := runEngine(t, run, Config{Pipeline: pipelineCfg(run, 60), Shards: 3})
	bounds := run.Config.World.Bounds
	box := query.Box{
		MinLat: bounds.MinLat, MinLon: bounds.MinLon,
		MaxLat: bounds.MaxLat, MaxLon: bounds.MaxLon,
	}
	mmsi := run.Positions[0].Report.MMSI
	reqs := map[query.Kind]query.Request{
		query.KindTrajectory:   {Kind: query.KindTrajectory, MMSI: mmsi},
		query.KindSpaceTime:    {Kind: query.KindSpaceTime, Box: &box},
		query.KindNearest:      {Kind: query.KindNearest, Lat: 42, Lon: 5, K: 3},
		query.KindLivePicture:  {Kind: query.KindLivePicture, Box: &box},
		query.KindSituation:    {Kind: query.KindSituation, Box: &box},
		query.KindAlertHistory: {Kind: query.KindAlertHistory},
		query.KindStats:        {Kind: query.KindStats},
	}
	// The situation kind assembles rather than merges; every other kind
	// ends in a merge/dedup stage.
	mergeSpan := map[query.Kind]string{query.KindSituation: "assemble"}
	for kind, req := range reqs {
		req.Trace = true
		res, err := e.Query(req)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		names := make(map[string]bool, len(res.Trace))
		sourceSpans := 0
		for _, sp := range res.Trace {
			names[sp.Name] = true
			if strings.HasPrefix(sp.Name, "source:") {
				sourceSpans++
			}
		}
		if sourceSpans == 0 {
			t.Errorf("%s: no source:* spans in trace %v", kind, names)
		}
		want := mergeSpan[kind]
		if want == "" {
			want = "merge"
		}
		if !names[want] {
			t.Errorf("%s: missing %q span in trace %v", kind, want, names)
		}
		if !names["total"] {
			t.Errorf("%s: missing total span in trace %v", kind, names)
		}
	}

	// Untraced requests must not pay for span bookkeeping.
	res, err := e.Query(query.Request{Kind: query.KindStats})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Errorf("untraced request returned %d spans", len(res.Trace))
	}

	// A trace carried by the context is filled in even when the request
	// does not ask for wire spans — the in-process propagation path.
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := e.QueryContext(ctx, query.Request{Kind: query.KindStats}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans()) == 0 {
		t.Error("context-carried trace recorded no spans")
	}
}

// BenchmarkObsOverhead compares the ingest hot path with observability
// off (Config.Obs nil: instrumentation sites reduce to nil checks) and
// on (live registry). E19 reports the end-to-end ratio; this pins the
// per-message cost for CI's bench smoke.
func BenchmarkObsOverhead(b *testing.B) {
	run := simTraffic(b, 11, 200, 30*time.Minute)
	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"off", nil},
		{"on", obs.NewRegistry()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e := New(Config{Pipeline: pipelineCfg(run, 60), Shards: 4, Obs: mode.reg})
			ctx := context.Background()
			e.Start(ctx)
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				for range e.Alerts() {
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := &run.Positions[i%len(run.Positions)]
				e.Ingest(ctx, o.At, &o.Report)
			}
			b.StopTimer()
			e.Close()
			<-drained
			e.Wait()
		})
	}
}
