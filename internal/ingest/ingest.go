// Package ingest is the asynchronous, backpressure-aware front door of the
// integrated infrastructure: it turns the synchronous core.Pipeline into a
// sharded dataflow that scales ingest across cores while keeping per-vessel
// ordering intact.
//
// The wiring, built from the internal/stream primitives:
//
//	Ingest()/decode workers
//	      │  (bounded channel — natural backpressure)
//	stream.Partition by MMSI ── shard 0 ── core.Pipeline.IngestBatch ─┐
//	      │                     shard 1 ── core.Pipeline.IngestBatch ─┤ stream.Merge
//	      │                     …                                     │
//	      └──────────────────── shard n ── core.Pipeline.IngestBatch ─┴─→ Alerts()
//
// Every channel is bounded, so a slow shard propagates backpressure to the
// submitter instead of growing queues without limit; each shard worker
// drains its queue into batches, amortising the pipeline lock across a
// burst. Partitioning uses the same key hash as core.Sharded.ShardFor
// (stream.ShardOf), so synchronous queries against the underlying shards
// observe exactly the vessels the dataflow routed there, and per-vessel
// processing order equals arrival order — the engine produces the same
// alert multiset as a sequential Pipeline over the same input.
//
// An optional NMEA front-end (StartLines) adds parallel decode workers in
// front of the partition stage; multi-fragment sentences are routed to a
// consistent worker so fragment reassembly still sees every part.
//
// An optional persistence back-end (Config.Backend, package
// internal/store) adds an asynchronous flush stage behind the shard
// stores: archived records queue into a bounded buffer that one flush
// goroutine drains into batched, checksummed WAL appends, so disk latency
// never sits on the ingest path yet saturation still backpressures. The
// stage drains and syncs when the dataflow completes (Wait), and a
// recovered archive re-enters the engine through Resume.
//
// An optional memory budget (Config.MemoryBudget, package internal/tier)
// makes the in-memory archive a cache over the durable store: an
// eviction manager watches per-vessel heat across the shard stores and
// spills the coldest vessels down to compact stubs once resident points
// exceed the budget, so the archive can grow past RAM while queries keep
// answering — reads page evicted spans back in transparently, minimally
// and singleflighted.
//
// The read side is the unified query surface (Query/QueryEngine, package
// internal/query): trajectory, space–time, nearest-vessel, live-picture,
// situation, alert-history and stats requests answered from the shards
// while ingest runs — cmd/maritimed serves it over HTTP with -http. The
// same surface runs continuously: every record that reaches a shard
// archive (and every raised alert) is published to the engine's
// subscription hub, so Subscribe turns any streamable request into a
// standing query (bounded per-subscriber queues; a slow consumer drops
// and is counted, never backpressuring ingest), and Config.Peers
// federates other daemons' pictures into every answer.
package ingest

import (
	"context"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ais"
	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/tier"
	"repro/internal/track"
	"repro/internal/tstore"
)

// Config parameterises an Engine. The zero value is usable: every field
// defaults to something sensible at New.
type Config struct {
	// Pipeline configures each shard's core.Pipeline.
	Pipeline core.Config
	// Shards is the number of pipeline shards (default runtime.GOMAXPROCS).
	Shards int
	// DecodeWorkers is the number of NMEA decode workers StartLines spawns
	// (default Shards).
	DecodeWorkers int
	// ShardBuf bounds each shard's input queue; a full queue blocks the
	// partitioner and, transitively, Ingest — backpressure (default 256).
	ShardBuf int
	// BatchSize caps how many queued reports a shard worker drains into one
	// IngestBatch call (default 64).
	BatchSize int
	// AlertBuf bounds the merged alert channel (default 256).
	AlertBuf int
	// Backend, when non-nil, persists every archived record through an
	// asynchronous batched flush stage: each shard's trajectory store
	// forwards its post-synopsis appends into a shared bounded queue that
	// a flush goroutine drains into Backend.Append calls. A full queue
	// backpressures the shard workers like every other stage. The engine
	// closes the flush stage (drain + final sync) when the dataflow
	// drains, but the Backend itself belongs to the caller.
	Backend store.Backend
	// Flush parameterises the flush stage (queue bound, batch size,
	// periodic fsync) when Backend is set.
	Flush store.FlushConfig
	// MemoryBudget, when > 0, bounds the resident in-memory archive
	// across all shards: a tier.Manager watches per-vessel heat and
	// evicts the coldest vessels down to compact stubs once resident
	// points exceed the budget, spilling their history into TierObjects.
	// Queries keep working over the evicted fleet — reads page the spans
	// they need back in transparently. Requires TierObjects.
	MemoryBudget int64
	// TierObjects is the object store evicted trajectory chunks spill to
	// (and page back from) when MemoryBudget is set — typically the same
	// store sealed WAL segments migrate to (store.Config.Remote), or a
	// local store.FSObjects directory.
	TierObjects store.ObjectStore
	// TierCheckEvery overrides the eviction manager's budget-check
	// cadence (default 2s; < 0 disables the loop so tests drive Check
	// explicitly via Tier()).
	TierCheckEvery time.Duration
	// Hub parameterises the publish/subscribe stage behind Subscribe:
	// the replay-ring retention and the default per-subscriber queue
	// bound. The hub stays dormant (one atomic check per record) until
	// something subscribes.
	Hub query.HubConfig
	// Peers are federation members (typically query.NewClient per remote
	// daemon) merged into every query answer alongside the local shards,
	// deduplicated on (MMSI, timestamp). A degraded peer is skipped, not
	// fatal — see query.PeerSource.
	Peers []query.Source
	// Track, when non-nil, runs the online track-intelligence stage: a
	// per-shard tracker attached to the post-synopsis tee (alongside the
	// hub and the flusher) maintaining fused Kalman state, an incremental
	// route model and an integrity profile per vessel, answering the
	// track/predict/quality query kinds live (and accepting non-AIS
	// detections through IngestDetections). Nil means no stage in the tee
	// and zero cost — the query engine then derives those kinds from the
	// archive on demand.
	Track *track.Config
	// Anomaly, when non-nil, runs the streaming anomaly lane: a
	// per-shard stage attached to the post-synopsis tee maintaining a
	// behavior profile per vessel (sliding-window distribution shift
	// against the vessel's own history), extracting stop/move episodes
	// incrementally into Anomaly.Semantic, and matching reporting gaps
	// continuously for feasible covert meetings — possible-rendezvous
	// alerts surface on the engine's Alerts stream and every /v1/stream
	// alert subscription. Answers the anomalies query kind live. Nil
	// means no stage in the tee and zero cost — the query engine then
	// derives the kind from the archive on demand.
	Anomaly *anomaly.Config
	// Obs, when non-nil, instruments every stage of the dataflow through
	// the registry: message and decode counters, sampled decode and
	// shard-queue-wait latency, per-batch pipeline latency, flush-stage
	// and WAL timings, tier eviction/page-back stats, hub fan-out and
	// query latency. Nil keeps every hot path on its uninstrumented
	// no-op branch.
	Obs *obs.Registry
	// Flight, when non-nil, is the black-box flight recorder every layer
	// of the dataflow writes its load-bearing transitions into: segment
	// seals and upload outcomes, upload-queue stalls, flush
	// backpressure, tier evictions and page-back failures, subscriber
	// drops, and track/anomaly stage failures. Nil keeps every site on
	// its nil-check branch.
	Flight *obs.Flight
}

func (c *Config) normalize() {
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.DecodeWorkers < 1 {
		c.DecodeWorkers = c.Shards
	}
	if c.ShardBuf < 1 {
		c.ShardBuf = 256
	}
	if c.BatchSize < 1 {
		c.BatchSize = 64
	}
	if c.AlertBuf < 1 {
		c.AlertBuf = 256
	}
}

// Engine is the running dataflow. Build with New, wire with Start, submit
// with Ingest (or StartLines for raw NMEA), read Alerts until closed.
type Engine struct {
	cfg     Config
	sharded *core.Sharded

	in     chan stream.Event[core.TimedReport]
	shards []<-chan stream.Event[core.TimedReport]
	alerts <-chan stream.Event[events.Alert]

	// Metrics counts position reports: In on submission, Out when a shard
	// worker has fully processed one, Dropped for reports refused because
	// the submission context was cancelled.
	Metrics stream.Metrics
	// DecodeMetrics counts the NMEA front-end when StartLines is used: In
	// per line, Out per decoded message, Dropped per undecodable line.
	DecodeMetrics stream.Metrics

	decodeStats ais.DecoderStats
	statsMu     sync.Mutex

	flusher   *store.Flusher
	flushDone chan struct{}
	tier      *tier.Manager
	tracks    track.Stages    // nil unless Config.Track is set
	anoms     *anomaly.Stages // nil unless Config.Anomaly is set

	// Instrumentation handles, set in Start (before any worker goroutine
	// launches) when Config.Obs is non-nil; nil means "don't measure".
	// Decode and shard-wait are sampled (1 in 64); batches are timed
	// whole, which amortises the clock reads across the batch.
	decodeNS    *obs.Histogram
	shardWaitNS *obs.Histogram
	batchNS     *obs.Histogram
	batchSizeH  *obs.Histogram

	hub       *query.Hub
	queryOnce sync.Once
	query     *query.Engine
	streamer  *query.Streamer

	started   bool
	closeOnce sync.Once
	workers   sync.WaitGroup
}

// New builds an engine (and its sharded pipelines) without starting it.
func New(cfg Config) *Engine {
	cfg.normalize()
	return &Engine{
		cfg:     cfg,
		sharded: core.NewSharded(cfg.Pipeline, cfg.Shards),
		hub:     query.NewHub(cfg.Hub),
	}
}

// Start wires the dataflow: partitioner, one worker per shard, merged
// alert stream, the publish hook feeding the subscription hub, and —
// when a Backend is configured — the persistence flush stage attached to
// every shard's archive store. It must be called exactly once, before
// Ingest.
func (e *Engine) Start(ctx context.Context) {
	if e.started {
		panic("ingest: Start called twice")
	}
	e.started = true
	if e.cfg.Flight != nil {
		e.hub.SetFlight(e.cfg.Flight)
		if d, ok := e.cfg.Backend.(*store.Disk); ok {
			d.SetFlight(e.cfg.Flight)
		}
	}
	if e.cfg.Backend != nil {
		e.flusher = store.NewFlusher(e.cfg.Backend, e.cfg.Flush)
		if e.cfg.Flight != nil {
			e.flusher.SetFlight(e.cfg.Flight)
		}
	}
	if e.cfg.Track != nil {
		e.tracks = track.NewStages(len(e.sharded.Shards), *e.cfg.Track)
	}
	if e.cfg.Anomaly != nil {
		e.anoms = anomaly.NewStages(len(e.sharded.Shards), *e.cfg.Anomaly)
		// CEP alerts join the pipelines' own detections on every standing
		// alert subscription (a no-op publish until someone subscribes).
		e.anoms.OnAlert(e.hub.PublishAlert)
	}
	// Every shard store tees its post-synopsis appends into the hub
	// (standing queries see exactly the records a one-shot replay would
	// return), the flush stage when persistence is on, and the track
	// stage when track intelligence is on. The hub is a single atomic
	// check per batch until something subscribes.
	for i, p := range e.sharded.Shards {
		sinks := []tstore.Sink{e.hub}
		if e.flusher != nil {
			sinks = append(sinks, e.flusher)
		}
		if e.tracks != nil {
			// Same shard routing as the pipelines (stream.ShardOf), so each
			// stage sees exactly its shard's vessels.
			sinks = append(sinks, e.flightWrap(e.tracks[i], "track"))
		}
		if e.anoms != nil {
			sinks = append(sinks, e.flightWrap(e.anoms.Stage(i), "anomaly"))
		}
		if len(sinks) == 1 {
			p.Store.Attach(sinks[0])
		} else {
			p.Store.Attach(tstore.Tee(sinks...))
		}
	}
	// Tiered archive: the eviction manager watches every shard store
	// against the shared memory budget, spilling cold vessels into the
	// object store and leaving stubs queries page back transparently.
	if e.cfg.MemoryBudget > 0 {
		stores := make([]*tstore.Store, len(e.sharded.Shards))
		for i, p := range e.sharded.Shards {
			stores[i] = p.Store
		}
		m, err := tier.NewManager(tier.Config{
			Budget:     e.cfg.MemoryBudget,
			CheckEvery: e.cfg.TierCheckEvery,
			Objects:    e.cfg.TierObjects,
		}, stores...)
		if err != nil {
			// A misconfigured tier (no object store) is a programming
			// error on par with Start-before-Ingest, not a runtime
			// condition to limp through with an unbounded archive.
			panic("ingest: " + err.Error())
		}
		if e.cfg.Flight != nil {
			m.SetFlight(e.cfg.Flight)
		}
		e.tier = m
	}
	e.in = make(chan stream.Event[core.TimedReport], e.cfg.ShardBuf)
	e.shards = stream.Partition(ctx, e.in, e.cfg.Shards, e.cfg.ShardBuf)
	// Instrument before the shard workers launch so the histogram fields
	// are plainly visible to them without atomics.
	if e.cfg.Obs != nil {
		e.instrument(e.cfg.Obs)
	}
	outs := make([]<-chan stream.Event[events.Alert], e.cfg.Shards)
	for i, part := range e.shards {
		out := make(chan stream.Event[events.Alert], e.cfg.AlertBuf)
		outs[i] = out
		e.workers.Add(1)
		go e.shardWorker(ctx, e.sharded.Shards[i], part, out)
	}
	e.alerts = stream.Merge(ctx, outs, e.cfg.AlertBuf)
	// Quiesce the flush stage once every shard worker has exited: drain
	// the queue, final-sync the backend. Wait blocks on this, so "drain
	// Alerts, then Wait" guarantees the persisted state covers every
	// processed report.
	e.flushDone = make(chan struct{})
	go func() {
		defer close(e.flushDone)
		e.workers.Wait()
		if e.flusher != nil {
			e.flusher.Close()
		}
		if e.tier != nil {
			// One final pass so the budget holds at quiesce even when the
			// whole feed replayed inside the loop's first tick, then stop
			// evicting; stubs stay pageable, so post-ingest queries still
			// see the whole archive.
			e.tier.Check()
			e.tier.Close()
		}
	}()
}

// instrument wires every stage into the registry. Called from Start
// (after the dataflow channels exist, before any shard worker launches)
// so the hot-path histogram fields are set once and read plainly.
func (e *Engine) instrument(reg *obs.Registry) {
	e.decodeNS = reg.Histogram("ingest_decode_ns")
	e.shardWaitNS = reg.Histogram("ingest_shard_wait_ns")
	e.batchNS = reg.Histogram("ingest_batch_append_ns")
	e.batchSizeH = reg.Histogram("ingest_batch_size")
	reg.CounterFunc("ingest_messages_in_total", func() float64 { return float64(e.Metrics.In.Load()) })
	reg.CounterFunc("ingest_messages_out_total", func() float64 { return float64(e.Metrics.Out.Load()) })
	reg.CounterFunc("ingest_messages_dropped_total", func() float64 { return float64(e.Metrics.Dropped.Load()) })
	reg.CounterFunc("ingest_decode_lines_total", func() float64 { return float64(e.DecodeMetrics.In.Load()) })
	reg.CounterFunc("ingest_decoded_total", func() float64 { return float64(e.DecodeMetrics.Out.Load()) })
	reg.CounterFunc("ingest_decode_failures_total", func() float64 { return float64(e.DecodeMetrics.Dropped.Load()) })
	for i, ch := range e.shards {
		ch := ch
		reg.GaugeFunc("ingest_shard_depth",
			func() float64 { return float64(len(ch)) },
			"shard", strconv.Itoa(i))
	}
	in, shards := e.in, e.shards
	reg.GaugeFunc("ingest_queue_depth", func() float64 {
		d := len(in)
		for _, ch := range shards {
			d += len(ch)
		}
		return float64(d)
	})
	if e.flusher != nil {
		e.flusher.Instrument(reg)
	}
	if d, ok := e.cfg.Backend.(*store.Disk); ok {
		d.Instrument(reg)
	}
	if e.tier != nil {
		e.tier.Instrument(reg)
	}
	if e.tracks != nil {
		e.tracks.Instrument(reg)
	}
	if e.anoms != nil {
		e.anoms.Instrument(reg)
	}
	e.hub.Instrument(reg)
}

// Resume preloads a recovered archive (store.Open) into the engine's
// shards before Start: each vessel's trajectory lands in its owning
// shard's store and its newest state seeds that shard's live picture. It
// returns the number of points loaded. Resumed points are not re-persisted
// (the flush stage attaches at Start) and do not count in pipeline
// metrics; detector and synopsis state restarts fresh — only the stored
// picture resumes, matching what the WAL can know.
func (e *Engine) Resume(st *tstore.Store) int {
	if e.started {
		panic("ingest: Resume after Start")
	}
	n := 0
	for _, mmsi := range st.MMSIs() {
		tr := st.Trajectory(mmsi)
		if len(tr.Points) == 0 {
			continue
		}
		p := e.sharded.ShardFor(mmsi)
		p.Store.AppendAll(tr.Points)
		p.Live.Update(tr.Points[len(tr.Points)-1])
		n += len(tr.Points)
	}
	return n
}

// shardWorker drains one partition into batches and runs them through its
// pipeline, forwarding raised alerts.
func (e *Engine) shardWorker(ctx context.Context, p *core.Pipeline,
	in <-chan stream.Event[core.TimedReport], out chan<- stream.Event[events.Alert]) {
	defer e.workers.Done()
	defer close(out)
	batch := make([]core.TimedReport, 0, e.cfg.BatchSize)
	for ev := range in {
		batch = append(batch[:0], ev.Value)
		// Opportunistically drain whatever queued behind it, up to the
		// batch cap, without blocking: one lock for the whole burst.
	drain:
		for len(batch) < e.cfg.BatchSize {
			select {
			case more, ok := <-in:
				if !ok {
					break drain
				}
				batch = append(batch, more.Value)
			default:
				break drain
			}
		}
		if e.shardWaitNS != nil {
			for _, tr := range batch {
				if !tr.Arrived.IsZero() {
					e.shardWaitNS.ObserveSince(tr.Arrived)
				}
			}
		}
		var t0 time.Time
		if e.batchNS != nil {
			t0 = time.Now()
		}
		alerts := p.IngestBatch(batch)
		if e.batchNS != nil {
			e.batchNS.ObserveSince(t0)
			e.batchSizeH.Observe(int64(len(batch)))
		}
		e.Metrics.Out.Add(int64(len(batch)))
		for _, a := range alerts {
			e.hub.PublishAlert(a) // no-op until something subscribes
			select {
			case out <- stream.Event[events.Alert]{Time: a.At, Key: uint64(a.MMSI), Value: a}:
			case <-ctx.Done():
				return
			}
		}
	}
}

// Ingest submits one decoded position report. It blocks when the dataflow
// is saturated (backpressure) and reports false once the context is
// cancelled. Calling Ingest after Close panics (send on closed channel),
// as does calling it before Start.
func (e *Engine) Ingest(ctx context.Context, at time.Time, rep *ais.PositionReport) bool {
	if !e.started {
		panic("ingest: Ingest before Start")
	}
	n := e.Metrics.In.Add(1)
	tr := core.TimedReport{At: at, Rep: rep}
	if e.shardWaitNS != nil && n&63 == 0 {
		// Sample the shard-queue wait on every 64th submission: one clock
		// read here, one in the shard worker — negligible against the
		// full-rate path, yet enough observations to hold a percentile.
		tr.Arrived = time.Now()
	}
	select {
	case e.in <- stream.Event[core.TimedReport]{
		Time: at, Key: uint64(rep.MMSI), Value: tr,
	}:
		return true
	case <-ctx.Done():
		e.Metrics.Dropped.Add(1)
		return false
	}
}

// IngestStatic runs a static/voyage message through its shard's veracity
// stage synchronously (static traffic is ~1/60 of position traffic; it
// does not need the async path).
func (e *Engine) IngestStatic(at time.Time, msg *ais.StaticVoyage) []quality.Issue {
	return e.sharded.ShardFor(msg.MMSI).IngestStatic(at, msg)
}

// Alerts is the merged alert stream. It closes after Close (or StartLines
// completion) once every in-flight report has been processed.
func (e *Engine) Alerts() <-chan stream.Event[events.Alert] { return e.alerts }

// Close stops intake. Queued reports keep flowing; the Alerts channel
// closes once everything in flight has been processed, so "drain Alerts
// until it closes" is the completion barrier. Safe to call more than once.
// Close does not block on the shard workers — a caller that drains Alerts
// only after Close would otherwise deadlock against a full alert buffer.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.in) })
}

// Wait blocks until every shard worker has exited — i.e. all submitted
// reports are processed and all alerts forwarded — and, when a Backend is
// configured, until the flush stage has drained and final-synced it.
// Someone must be draining Alerts (or the merge buffers must suffice) for
// Wait to return.
func (e *Engine) Wait() {
	e.workers.Wait()
	if e.flushDone != nil {
		<-e.flushDone
	}
}

// FlushMetrics snapshots the persistence stage counters: In = records
// enqueued by the shard stores, Out = records the backend accepted,
// Dropped = records refused or failed. Zero when no Backend is configured.
func (e *Engine) FlushMetrics() stream.MetricsSnapshot {
	if e.flusher == nil {
		return stream.MetricsSnapshot{}
	}
	return e.flusher.Metrics.Snapshot()
}

// FlushErr returns the first error the storage stages have seen — the
// flush goroutine's backend writes, a shard store whose forwarding into
// the queue was refused, a failed remote segment/snapshot migration
// (degraded to local disk), an eviction spill, or a chunk page-back
// (nil while every stage is healthy). Complete after Wait.
func (e *Engine) FlushErr() error {
	if e.flusher != nil {
		if err := e.flusher.Err(); err != nil {
			return err
		}
	}
	if d, ok := e.cfg.Backend.(*store.Disk); ok {
		// A failed segment/snapshot migration degrades to local disk —
		// nothing lost, but the operator must hear about it somewhere
		// other than the next restart.
		if err := d.UploadErr(); err != nil {
			return err
		}
	}
	for _, p := range e.sharded.Shards {
		if err := p.Store.SinkErr(); err != nil {
			return err
		}
	}
	if e.tier != nil {
		if err := e.tier.Err(); err != nil {
			return err
		}
		for _, p := range e.sharded.Shards {
			if err := p.Store.PageErr(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tier returns the eviction manager (nil without a MemoryBudget) — the
// handle for explicit Check calls in tests and benchmarks.
func (e *Engine) Tier() *tier.Manager { return e.tier }

// TierStats snapshots the tiered-archive state: resident vs evicted
// points and vessels, eviction and page-back counters, spill volume and
// cache behaviour. Zero when no MemoryBudget is configured.
func (e *Engine) TierStats() tier.Stats {
	if e.tier == nil {
		return tier.Stats{}
	}
	return e.tier.Stats()
}

// IngestDetections feeds non-AIS sensor detections (radar contacts)
// into the online track stage, which gates and assigns them to fused
// vessel tracks (contacts no vessel gates become anonymous orphan
// tracks). Detections are fused synchronously — callers interleave them
// with Ingest in timeline order. Returns the number of contacts fused
// into identified tracks; a no-op 0 when the stage is off (Config.Track
// nil) or before Start.
func (e *Engine) IngestDetections(ds []track.Detection) int {
	if e.tracks == nil {
		return 0
	}
	return e.tracks.Process(ds)
}

// Tracks exposes the online track stage (nil when Config.Track is nil):
// fused per-vessel state, the TrackIntelSource the query engine reads,
// and the stage counters.
func (e *Engine) Tracks() track.Stages { return e.tracks }

// Anomalies exposes the streaming anomaly lane (nil when Config.Anomaly
// is nil): per-vessel behavior profiles, the AnomalySource the query
// engine reads, episode/gap/rendezvous tallies and the retained CEP
// alerts.
func (e *Engine) Anomalies() *anomaly.Stages { return e.anoms }

// Sharded exposes the underlying pipelines for synchronous queries —
// situation pictures, forecasts, archive access. Quiesce (Close, or just
// stop submitting) before deep reads if exact cut-off points matter.
func (e *Engine) Sharded() *core.Sharded { return e.sharded }

// QueryEngine returns the unified read surface over the engine's shards
// plus any configured federation peers: every request kind of
// internal/query answered from the live pipelines (per-vessel reads
// route to the owning shard; set reads fan out and merge), with peer
// answers merged in and deduplicated on (MMSI, timestamp). The engine is
// built once and cached — its per-shard spatial snapshots persist across
// queries and rebuild only after new ingest. Safe to call while
// ingesting: reads see each shard's consistent current state.
func (e *Engine) QueryEngine() *query.Engine {
	e.queryOnce.Do(func() {
		// The live source answers the track-intelligence kinds straight
		// from the online stage when one runs; a plain nil (not a typed
		// nil in the interface) keeps the derive-from-archive fallback.
		var ti query.TrackIntelSource
		if e.tracks != nil {
			ti = e.tracks
		}
		var ai query.AnomalySource
		if e.anoms != nil {
			ai = e.anoms
		}
		sources := append([]query.Source{query.NewLiveSourceIntel(e.sharded, ti, ai)}, e.cfg.Peers...)
		e.query = query.NewEngine(sources...)
		if e.cfg.Obs != nil {
			e.query.Instrument(e.cfg.Obs)
		}
		e.streamer = query.NewStreamer(e.hub, e.query)
	})
	return e.query
}

// Query answers one unified read request from the engine's shards — the
// ingest engine's read surface, same contract as query.Engine.Query.
func (e *Engine) Query(req query.Request) (*query.Result, error) {
	return e.QueryEngine().Query(req)
}

// QueryContext is Query under a caller context: traces attached with
// obs.WithTrace propagate into the stage spans, and query.Server routes
// HTTP requests here so &trace=1 reaches the engine.
func (e *Engine) QueryContext(ctx context.Context, req query.Request) (*query.Result, error) {
	return e.QueryEngine().QueryContext(ctx, req)
}

// Hub is the engine's publish/subscribe stage: it carries every record
// that reaches the shard archives (and every raised alert) to standing
// queries, and its Metrics expose publication, delivery and
// slow-consumer-drop counts.
func (e *Engine) Hub() *query.Hub { return e.hub }

// Subscribe turns a query request into a standing query over the live
// dataflow: state updates as they are archived, alerts as they are
// raised, situations on a ticker — the push half of the read surface,
// served remotely by maritimed's /v1/stream. Safe to call while
// ingesting; subscribe before feeding the engine to observe everything.
func (e *Engine) Subscribe(req query.Request, opt query.SubOptions) (*query.Subscription, error) {
	e.QueryEngine() // ensure the streamer exists
	return e.streamer.Subscribe(req, opt)
}

// Snapshot sums the per-shard pipeline metrics.
func (e *Engine) Snapshot() core.Snapshot { return e.sharded.Snapshot() }

// Line is one raw NMEA sentence with its receive timestamp.
type Line struct {
	At   time.Time
	Text string
}

// StartLines bolts the NMEA decode front-end onto a started engine: n
// decode workers (each with its own fragment-reassembling decoder) consume
// lines in parallel, a resequencer restores arrival order, decoded
// position reports feed the dataflow and static messages go to onStatic
// (which may be nil; it is called from the single resequencer goroutine,
// never concurrently). When lines closes and everything drains, the
// engine is Closed automatically, so the caller's lifecycle is: feed
// lines → close(lines) → drain Alerts.
//
// Single-fragment sentences — the overwhelming bulk of AIS traffic — are
// spread round-robin; multi-fragment sentences are routed by their
// (message id, channel) linking key so reassembly sees every part in one
// decoder. Every line carries a sequence number and every worker reports
// a per-line outcome, so the resequencer emits messages in exactly the
// order a single sequential decoder would have: per-vessel event-time
// order — which the pipelines rely on — survives parallel decode, and a
// replayed log produces the same alert multiset at any worker count.
func (e *Engine) StartLines(ctx context.Context, lines <-chan Line,
	onStatic func(at time.Time, msg *ais.StaticVoyage, issues []quality.Issue)) {
	if !e.started {
		panic("ingest: StartLines before Start")
	}
	n := e.cfg.DecodeWorkers
	type seqLine struct {
		seq  int64
		line Line
	}
	type outcome struct {
		seq int64
		at  time.Time
		msg any // nil: line consumed without completing a message
	}
	perWorker := make([]chan seqLine, n)
	for i := range perWorker {
		perWorker[i] = make(chan seqLine, e.cfg.ShardBuf)
	}
	results := make(chan outcome, n*e.cfg.ShardBuf)
	var decoders sync.WaitGroup
	decoders.Add(n)
	for i := range perWorker {
		go func(in <-chan seqLine) {
			defer decoders.Done()
			dec := ais.NewDecoder()
			defer func() {
				e.statsMu.Lock()
				addDecoderStats(&e.decodeStats, dec.Stats)
				e.statsMu.Unlock()
			}()
			var n int
			for sl := range in {
				n++
				var t0 time.Time
				timed := e.decodeNS != nil && n&63 == 0
				if timed {
					t0 = time.Now()
				}
				msg, err := dec.Decode(sl.line.Text)
				if timed {
					e.decodeNS.ObserveSince(t0)
				}
				if err != nil {
					e.DecodeMetrics.Dropped.Add(1)
					msg = nil
				}
				select {
				case results <- outcome{seq: sl.seq, at: sl.line.At, msg: msg}:
				case <-ctx.Done():
					return
				}
			}
		}(perWorker[i])
	}
	// Distributor: stamp a sequence number, route with a cheap scan (no
	// full parse), keep fragment groups on one decoder.
	go func() {
		defer func() {
			for _, ch := range perWorker {
				close(ch)
			}
		}()
		var seq int64
		rr := 0
		for l := range lines {
			e.DecodeMetrics.In.Add(1)
			idx := rr % n
			if key, multi := fragmentKey(l.Text); multi {
				idx = stream.ShardOf(hashString(key), n)
			} else {
				rr++
			}
			select {
			case perWorker[idx] <- seqLine{seq: seq, line: l}:
			case <-ctx.Done():
				return
			}
			seq++
		}
	}()
	// Close the results channel once every worker is done.
	go func() {
		decoders.Wait()
		close(results)
	}()
	// Resequencer: emit outcomes in line-arrival order, then quiesce the
	// engine so Alerts closes.
	go func() {
		defer e.Close()
		var next int64
		held := make(map[int64]outcome)
		emit := func(o outcome) bool {
			if o.msg == nil {
				return true
			}
			e.DecodeMetrics.Out.Add(1)
			switch m := o.msg.(type) {
			case *ais.PositionReport:
				return e.Ingest(ctx, o.at, m)
			case *ais.StaticVoyage:
				issues := e.IngestStatic(o.at, m)
				if onStatic != nil {
					onStatic(o.at, m, issues)
				}
			}
			return true
		}
		for o := range results {
			if o.seq != next {
				held[o.seq] = o
				continue
			}
			if !emit(o) {
				return
			}
			next++
			for {
				h, ok := held[next]
				if !ok {
					break
				}
				delete(held, next)
				if !emit(h) {
					return
				}
				next++
			}
		}
	}()
}

// DecodeStats sums the decoder counters accumulated by finished decode
// workers (complete after the Alerts channel closes).
func (e *Engine) DecodeStats() ais.DecoderStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.decodeStats
}

func addDecoderStats(dst *ais.DecoderStats, s ais.DecoderStats) {
	dst.Sentences += s.Sentences
	dst.Malformed += s.Malformed
	dst.Messages += s.Messages
	dst.Undecoded += s.Undecoded
	dst.Incomplete += s.Incomplete
}

// fragmentKey extracts the fragment linking key (msgID/channel) from an
// AIVDM/AIVDO line without a full parse, and whether the sentence is part
// of a multi-fragment message. Malformed lines report single-fragment; the
// decoder rejects them properly downstream.
func fragmentKey(line string) (string, bool) {
	// !AIVDM,<fragcount>,<fragnum>,<msgid>,<channel>,<payload>,<fill>*CS
	i := strings.IndexByte(line, ',')
	if i < 0 {
		return "", false
	}
	rest := line[i+1:] // <fragcount>,...
	if strings.HasPrefix(rest, "1,") {
		return "", false // fragment count 1: self-contained sentence
	}
	// Skip <fragcount> and <fragnum>.
	for field := 0; field < 2; field++ {
		j := strings.IndexByte(rest, ',')
		if j < 0 {
			return "", false
		}
		rest = rest[j+1:]
	}
	// rest = <msgid>,<channel>,<payload>,… — the key is msgid+channel,
	// exactly what the decoder groups pending fragments by.
	j := strings.IndexByte(rest, ',')
	if j < 0 {
		return "", false
	}
	k := strings.IndexByte(rest[j+1:], ',')
	if k < 0 {
		return "", false
	}
	return rest[:j+1+k], true
}

// hashString is FNV-1a, inlined to keep the distributor allocation-free.
func hashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
