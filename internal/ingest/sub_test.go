package ingest

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sim"
)

// subRun simulates a small fleet for the subscription tests.
func subRun(t testing.TB, vessels int, minutes int) *sim.Run {
	t.Helper()
	run, err := sim.Simulate(sim.Config{
		Seed: 7, NumVessels: vessels,
		Duration: time.Duration(minutes) * time.Minute, TickSec: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func stateKey(mmsi uint32, at time.Time) string {
	return fmt.Sprintf("%d@%d", mmsi, at.UnixNano())
}

// TestStreamSubscriptionEquivalence pins the acceptance criterion: a
// standing spacetime subscription over /v1/stream delivers the same set
// of vessel states as a one-shot replay of the identical request issued
// after ingest completes.
func TestStreamSubscriptionEquivalence(t *testing.T) {
	run := subRun(t, 40, 20)
	e := New(Config{
		Pipeline: core.Config{DisableEvents: true},
		Shards:   4,
	})
	ctx := context.Background()
	e.Start(ctx)
	ts := httptest.NewServer(query.NewServer(e)) // ingest.Engine: Executor + Subscriber
	defer ts.Close()

	// The identical request, used both as the standing subscription and
	// as the one-shot replay afterwards.
	req := query.Request{
		Kind: query.KindSpaceTime,
		Box:  &query.Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180},
	}
	c := query.NewClient(ts.URL)
	sub, err := c.Subscribe(req, query.SubOptions{Buffer: 1 << 17}) // roomy: this test measures equivalence, not drops
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	pushed := make(map[string]query.State)
	var pushedMu sync.Mutex
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for u := range sub.Updates() {
			if u.Kind != query.UpdateState {
				continue
			}
			pushedMu.Lock()
			pushed[stateKey(u.State.MMSI, u.State.At)] = *u.State
			pushedMu.Unlock()
		}
	}()

	go func() {
		for ev := range e.Alerts() {
			_ = ev
		}
	}()
	for i := range run.Positions {
		o := &run.Positions[i]
		e.Ingest(ctx, o.At, &o.Report)
	}
	e.Close()
	e.Wait()

	// One-shot replay of the identical request after ingest completed.
	replay, err := c.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]query.State, len(replay.States))
	for _, s := range replay.States {
		want[stateKey(s.MMSI, s.At)] = s
	}

	// The subscription must converge on exactly the replayed set.
	deadline := time.Now().Add(10 * time.Second)
	for {
		pushedMu.Lock()
		n := len(pushed)
		pushedMu.Unlock()
		if n >= len(want) || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sub.Cancel()
	<-drained
	if sub.Dropped() != 0 {
		t.Fatalf("equivalence run dropped %d updates — raise the buffer", sub.Dropped())
	}
	if len(pushed) != len(want) {
		t.Fatalf("subscription delivered %d distinct states, replay has %d", len(pushed), len(want))
	}
	for k, ws := range want {
		ps, ok := pushed[k]
		if !ok {
			t.Fatalf("state %s present in replay but never pushed", k)
		}
		if ps.Lat != ws.Lat || ps.Lon != ws.Lon || ps.SpeedKn != ws.SpeedKn {
			t.Fatalf("pushed state %s diverges from replayed: %+v vs %+v", k, ps, ws)
		}
	}
}

// TestSubscriptionDuringIngestRace streams a box watch while the engine
// ingests concurrently (run under -race in CI): pushed updates must be a
// subset-ordered view of the final archive state — every update present
// in the final archive, sequence numbers strictly increasing, per-vessel
// event times non-decreasing — and a deliberately slow consumer must be
// dropped-from and counted, never deadlocked.
func TestSubscriptionDuringIngestRace(t *testing.T) {
	run := subRun(t, 30, 15)
	e := New(Config{
		Pipeline: core.Config{DisableEvents: true},
		Shards:   4,
	})
	ctx := context.Background()
	e.Start(ctx)

	world := query.Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	watcher, err := e.Subscribe(query.Request{Kind: query.KindSpaceTime, Box: &world},
		query.SubOptions{Buffer: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	// The slow consumer: a 2-slot queue it drains with a delay, so drops
	// are guaranteed while ingest floods the hub.
	slow, err := e.Subscribe(query.Request{Kind: query.KindSpaceTime, Box: &world},
		query.SubOptions{Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}

	type rec struct {
		seq   uint64
		state query.State
	}
	var got []rec
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for u := range watcher.Updates() {
			if u.Kind == query.UpdateState {
				got = append(got, rec{u.Seq, *u.State})
			}
		}
	}()
	go func() {
		defer wg.Done()
		for range slow.Updates() {
			time.Sleep(200 * time.Microsecond)
		}
	}()

	go func() {
		for range e.Alerts() {
		}
	}()
	for i := range run.Positions {
		o := &run.Positions[i]
		e.Ingest(ctx, o.At, &o.Report)
	}
	e.Close()
	e.Wait()
	watcher.Cancel()
	slow.Cancel()
	wg.Wait()

	if len(got) == 0 {
		t.Fatal("box watch saw nothing")
	}
	// Subset: every pushed update exists in the final archive.
	replay, err := e.Query(query.Request{Kind: query.KindSpaceTime, Box: &world})
	if err != nil {
		t.Fatal(err)
	}
	final := make(map[string]bool, len(replay.States))
	for _, s := range replay.States {
		final[stateKey(s.MMSI, s.At)] = true
	}
	lastPerVessel := map[uint32]time.Time{}
	for i, r := range got {
		if !final[stateKey(r.state.MMSI, r.state.At)] {
			t.Fatalf("pushed state %d@%v is not in the final archive", r.state.MMSI, r.state.At)
		}
		if i > 0 && r.seq <= got[i-1].seq {
			t.Fatalf("sequence regressed: %d after %d", r.seq, got[i-1].seq)
		}
		if last, ok := lastPerVessel[r.state.MMSI]; ok && r.state.At.Before(last) {
			t.Fatalf("vessel %d went back in time: %v after %v", r.state.MMSI, r.state.At, last)
		}
		lastPerVessel[r.state.MMSI] = r.state.At
	}
	// The slow consumer was dropped-from — and the drops are accounted.
	if slow.Dropped() == 0 {
		t.Fatal("slow consumer saw no drops: the test lost its teeth (shrink the buffer)")
	}
	m := e.Hub().Metrics.Snapshot()
	if m.Dropped < int64(slow.Dropped()) {
		t.Fatalf("hub counts %d drops, slow consumer reports %d", m.Dropped, slow.Dropped())
	}
	if m.In == 0 {
		t.Fatal("hub published nothing")
	}
	if watcher.Dropped() != 0 {
		t.Fatalf("roomy watcher dropped %d updates", watcher.Dropped())
	}
}
