package ingest

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tstore"
)

func pipelineCfg(run *sim.Run, tolM float64) core.Config {
	return core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: tolM}
}

// archivedStates collects every shard store's archived points as one
// (MMSI, time)-sorted slice, quantised to disk precision.
func archivedStates(e *Engine) []model.VesselState {
	var out []model.VesselState
	for _, p := range e.Sharded().Shards {
		for _, mmsi := range p.Store.MMSIs() {
			for _, s := range p.Store.Trajectory(mmsi).Points {
				out = append(out, store.Quantize(s))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MMSI != out[j].MMSI {
			return out[i].MMSI < out[j].MMSI
		}
		return out[i].At.Before(out[j].At)
	})
	return out
}

func storeStates(st *tstore.Store) []model.VesselState {
	var out []model.VesselState
	for _, mmsi := range st.MMSIs() {
		out = append(out, st.Trajectory(mmsi).Points...)
	}
	return out
}

// TestFlushStageMirrorsArchive pins that the async flush stage delivers
// exactly the records the shard stores archived — no loss, no
// duplication — and that the flush metrics account for every one.
func TestFlushStageMirrorsArchive(t *testing.T) {
	run := simTraffic(t, 21, 60, 30*time.Minute)
	mem := store.NewMem()
	_, e := runEngine(t, run, Config{
		Pipeline: pipelineCfg(run, 60),
		Shards:   4,
		Backend:  mem,
		Flush:    store.FlushConfig{Queue: 512, Batch: 64},
	})
	e.Wait()

	want := archivedStates(e)
	got := make([]model.VesselState, 0, mem.Len())
	for _, s := range mem.States() {
		got = append(got, store.Quantize(s))
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].MMSI != got[j].MMSI {
			return got[i].MMSI < got[j].MMSI
		}
		return got[i].At.Before(got[j].At)
	})
	if len(got) == 0 {
		t.Fatal("flush stage delivered nothing")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("backend holds %d records, shard stores archived %d — contents diverge",
			len(got), len(want))
	}
	fm := e.FlushMetrics()
	if fm.In != int64(len(want)) || fm.Out != int64(len(want)) || fm.Dropped != 0 {
		t.Fatalf("flush metrics = %+v, want In=Out=%d Dropped=0", fm, len(want))
	}
	if err := e.FlushErr(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRestartRecoversPersistedState is the resume-on-restart
// acceptance path at engine level: run a persisted engine, stop it,
// reopen the archive directory, and check the recovered store and the
// resumed engine's live picture equal the persisted state exactly.
// (Torn-tail kills are pinned byte-for-byte in internal/store's
// recovery tests; this test covers the stack wiring above them.)
func TestEngineRestartRecoversPersistedState(t *testing.T) {
	run := simTraffic(t, 33, 40, 30*time.Minute)
	dir := t.TempDir()
	cfg := store.Config{Dir: dir, SegmentBytes: 1 << 16}

	arch, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, e1 := runEngine(t, run, Config{
		Pipeline: pipelineCfg(run, 60),
		Shards:   4,
		Backend:  arch.Backend,
	})
	e1.Wait()
	persisted := archivedStates(e1)
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := storeStates(re.Store); !reflect.DeepEqual(got, persisted) {
		t.Fatalf("recovered %d records, engine archived %d — contents diverge", len(got), len(persisted))
	}
	if re.Stats.Total() != len(persisted) {
		t.Fatalf("RecoverStats.Total = %d, want %d", re.Stats.Total(), len(persisted))
	}

	// Resume into a fresh engine: shard stores and live pictures must
	// reflect the persisted state, routed to the same shards.
	e2 := New(Config{Pipeline: pipelineCfg(run, 60), Shards: 4})
	if n := e2.Resume(re.Store); n != len(persisted) {
		t.Fatalf("Resume loaded %d records, want %d", n, len(persisted))
	}
	if got := archivedStates(e2); !reflect.DeepEqual(got, persisted) {
		t.Fatal("resumed shard stores diverge from persisted state")
	}
	// The alert-relevant live picture: newest persisted state per vessel.
	byVessel := map[uint32]model.VesselState{}
	for _, s := range persisted {
		byVessel[s.MMSI] = s // persisted is time-sorted per vessel
	}
	for mmsi, want := range byVessel {
		got, ok := e2.Sharded().ShardFor(mmsi).Live.Get(mmsi)
		if !ok {
			t.Fatalf("vessel %d missing from resumed live picture", mmsi)
		}
		if got = store.Quantize(got); !got.At.Equal(want.At) || got.Pos != want.Pos {
			t.Fatalf("vessel %d live state = %+v, want %+v", mmsi, got, want)
		}
	}

	// And the resumed engine keeps ingesting on top of the recovered
	// state without disturbing it.
	e2.Start(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range e2.Alerts() {
		}
	}()
	extra := run.Positions[0]
	at := extra.At.Add(24 * time.Hour)
	if !e2.Ingest(context.Background(), at, &extra.Report) {
		t.Fatal("resumed engine refused ingest")
	}
	e2.Close()
	<-done
	e2.Wait()
	total := 0
	for _, p := range e2.Sharded().Shards {
		total += p.Store.Len()
	}
	if total != len(persisted)+1 {
		t.Fatalf("after resumed ingest: %d points, want %d", total, len(persisted)+1)
	}
}
