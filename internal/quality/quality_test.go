package quality

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/sim"
)

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

func cleanStatic() *ais.StaticVoyage {
	return &ais.StaticVoyage{
		MMSI: 227006760, IMO: 9074729, CallSign: "FQ8L",
		ShipName: "SALMON RUNNER", ShipType: ais.ShipTypeCargo,
		DimBow: 80, DimStern: 40, DimPort: 10, DimStarb: 10,
		Draught: 7, Destination: "MARSEILLE",
	}
}

func TestCheckStaticCleanMessage(t *testing.T) {
	if issues := CheckStatic(cleanStatic()); len(issues) != 0 {
		t.Errorf("clean message flagged: %v", issues)
	}
}

func TestCheckStaticCatchesEachCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ais.StaticVoyage)
		field  string
	}{
		{"invalid mmsi", func(m *ais.StaticVoyage) { m.MMSI = 12345 }, FieldMMSI},
		{"blank name", func(m *ais.StaticVoyage) { m.ShipName = "" }, FieldName},
		{"placeholder name", func(m *ais.StaticVoyage) { m.ShipName = "NONAME" }, FieldName},
		{"zero dims", func(m *ais.StaticVoyage) { m.DimBow, m.DimStern, m.DimPort, m.DimStarb = 0, 0, 0, 0 }, FieldDims},
		{"absurd dims", func(m *ais.StaticVoyage) { m.DimBow, m.DimStern = 500, 511 }, FieldDims},
		{"unknown type", func(m *ais.StaticVoyage) { m.ShipType = ais.ShipTypeUnknown }, FieldShipType},
		{"blank callsign", func(m *ais.StaticVoyage) { m.CallSign = "" }, FieldCallSign},
	}
	for _, c := range cases {
		m := cleanStatic()
		c.mutate(m)
		issues := CheckStatic(m)
		found := false
		for _, is := range issues {
			if is.Field == c.field {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no issue on field %s (got %v)", c.name, c.field, issues)
		}
	}
}

func TestKinematicTeleport(t *testing.T) {
	var k KinematicChecker
	s1 := model.VesselState{MMSI: 1, At: t0(), Pos: geo.Point{Lat: 43, Lon: 5}, SpeedKn: 10}
	s2 := model.VesselState{MMSI: 1, At: t0().Add(10 * time.Second), Pos: geo.Point{Lat: 43.5, Lon: 5}, SpeedKn: 10}
	if issues := k.Check(s1); len(issues) != 0 {
		t.Fatal("first sample cannot raise issues")
	}
	issues := k.Check(s2) // 55 km in 10 s
	foundTeleport := false
	for _, is := range issues {
		if is.Rule == "teleport" {
			foundTeleport = true
		}
	}
	if !foundTeleport {
		t.Errorf("teleport not detected: %v", issues)
	}
}

func TestKinematicCleanTrackPasses(t *testing.T) {
	var k KinematicChecker
	pos := geo.Point{Lat: 43, Lon: 5}
	at := t0()
	for i := 0; i < 50; i++ {
		s := model.VesselState{MMSI: 1, At: at, Pos: pos, SpeedKn: 12, CourseDeg: 90}
		if issues := k.Check(s); len(issues) != 0 {
			t.Fatalf("clean track flagged at %d: %v", i, issues)
		}
		pos = geo.Project(pos, geo.Velocity{SpeedMS: 12 * geo.Knot, CourseDg: 90}, 10)
		at = at.Add(10 * time.Second)
	}
}

func TestKinematicSOGMismatch(t *testing.T) {
	var k KinematicChecker
	s1 := model.VesselState{MMSI: 1, At: t0(), Pos: geo.Point{Lat: 43, Lon: 5}, SpeedKn: 0}
	// Moves 3 km in 60 s (≈97 kn implied... too big; use smaller): 1 km in 60 s ≈ 32 kn vs reported 0.
	s2 := model.VesselState{MMSI: 1, At: t0().Add(60 * time.Second),
		Pos: geo.Destination(geo.Point{Lat: 43, Lon: 5}, 90, 1000), SpeedKn: 0}
	k.Check(s1)
	issues := k.Check(s2)
	found := false
	for _, is := range issues {
		if is.Rule == "sog-mismatch" {
			found = true
		}
	}
	if !found {
		t.Errorf("SOG mismatch not detected: %v", issues)
	}
}

func TestKinematicTimeRegression(t *testing.T) {
	var k KinematicChecker
	s1 := model.VesselState{MMSI: 1, At: t0().Add(time.Minute), Pos: geo.Point{Lat: 43, Lon: 5}}
	s2 := model.VesselState{MMSI: 1, At: t0(), Pos: geo.Point{Lat: 43, Lon: 5}}
	k.Check(s1)
	issues := k.Check(s2)
	if len(issues) != 1 || issues[0].Rule != "time-regression" {
		t.Errorf("time regression not detected: %v", issues)
	}
}

func TestMeasureCompleteness(t *testing.T) {
	from, to := t0(), t0().Add(time.Hour)
	// Reports every minute except a 20-minute hole in the middle.
	var times []time.Time
	for m := 0; m < 60; m++ {
		if m >= 20 && m < 40 {
			continue
		}
		times = append(times, from.Add(time.Duration(m)*time.Minute))
	}
	c := MeasureCompleteness(1, times, from, to, time.Minute, 5*time.Minute)
	if c.Received != 40 {
		t.Errorf("received %d", c.Received)
	}
	if c.LongestGap < 20*time.Minute || c.LongestGap > 22*time.Minute {
		t.Errorf("longest gap %v", c.LongestGap)
	}
	if c.GapsOver != 1 {
		t.Errorf("gaps over threshold: %d", c.GapsOver)
	}
	// Dark time = 21min gap − 5min threshold = 16min → fraction ≈ 0.27.
	if c.DarkFraction < 0.2 || c.DarkFraction > 0.35 {
		t.Errorf("dark fraction %.3f", c.DarkFraction)
	}
	if c.Ratio < 0.6 || c.Ratio > 0.7 {
		t.Errorf("ratio %.3f", c.Ratio)
	}
}

func TestCompletenessFullCoverage(t *testing.T) {
	from, to := t0(), t0().Add(time.Hour)
	var times []time.Time
	for m := 0; m <= 60; m++ {
		times = append(times, from.Add(time.Duration(m)*time.Minute))
	}
	c := MeasureCompleteness(1, times, from, to, time.Minute, 5*time.Minute)
	if c.DarkTime != 0 || c.GapsOver != 0 {
		t.Errorf("full coverage should have no dark time: %+v", c)
	}
	if c.Ratio != 1 {
		t.Errorf("ratio %.3f", c.Ratio)
	}
}

func TestCompletenessEdges(t *testing.T) {
	c := MeasureCompleteness(1, nil, t0(), t0(), time.Minute, time.Minute)
	if c.Received != 0 || c.Ratio != 0 {
		t.Errorf("degenerate window: %+v", c)
	}
	// No reports at all: the whole window beyond the threshold is dark.
	c = MeasureCompleteness(1, nil, t0(), t0().Add(time.Hour), time.Minute, 5*time.Minute)
	if c.DarkFraction < 0.9 {
		t.Errorf("silent vessel should be ~fully dark: %.3f", c.DarkFraction)
	}
}

func TestProfile(t *testing.T) {
	p := NewProfile()
	mean, _ := p.Reliability("new")
	if mean != 0.5 {
		t.Errorf("prior mean %.2f", mean)
	}
	for i := 0; i < 50; i++ {
		p.Record("good", true)
		p.Record("bad", i%3 != 0) // ~33% failures
	}
	gm, gl := p.Reliability("good")
	bm, _ := p.Reliability("bad")
	if gm < 0.9 || gl > gm {
		t.Errorf("good source: mean %.2f lower %.2f", gm, gl)
	}
	if bm > 0.8 {
		t.Errorf("bad source mean %.2f should be depressed", bm)
	}
	if got := p.Subjects(); len(got) != 2 || got[0] != "bad" {
		t.Errorf("subjects: %v", got)
	}
}

// TestE3EndToEnd is the E3 experiment in miniature: simulate traffic with
// 5% static corruption, run the detectors, and score detection quality
// against the simulator's ground truth.
func TestE3EndToEnd(t *testing.T) {
	cfg := sim.Config{
		Seed: 42, NumVessels: 120, Duration: 2 * time.Hour, TickSec: 2,
		StaticErrorRate: 0.05,
	}
	run, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Statics) < 200 {
		t.Fatalf("not enough static traffic: %d", len(run.Statics))
	}
	var tp, fp, fn int
	for i := range run.Statics {
		so := &run.Statics[i]
		flagged := len(CheckStatic(&so.Msg)) > 0
		switch {
		case flagged && so.Corrupted:
			tp++
		case flagged && !so.Corrupted:
			fp++
		case !flagged && so.Corrupted:
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("no corrupted statics detected at all")
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	if precision < 0.9 {
		t.Errorf("precision %.3f too low (fp=%d)", precision, fp)
	}
	if recall < 0.9 {
		t.Errorf("recall %.3f too low (fn=%d)", recall, fn)
	}
	// The estimated error rate should land near the injected 5%.
	var msgs []*ais.StaticVoyage
	for i := range run.Statics {
		msgs = append(msgs, &run.Statics[i].Msg)
	}
	score := ScoreStatics(msgs)
	if score.EstimatedRate < 0.02 || score.EstimatedRate > 0.09 {
		t.Errorf("estimated rate %.3f not near 0.05", score.EstimatedRate)
	}
	t.Logf("E3: precision=%.3f recall=%.3f estimated-rate=%.3f", precision, recall, score.EstimatedRate)
}

func TestKinematicCatchesSimulatedSpoof(t *testing.T) {
	cfg := sim.Config{
		Seed: 7, NumVessels: 80, Duration: 90 * time.Minute, TickSec: 2,
		SpoofShipFrac: 0.3,
	}
	run, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spoofed := map[uint32]bool{}
	for _, e := range run.Events {
		if e.Kind == sim.EventSpoofOffset {
			spoofed[e.MMSI] = true
		}
	}
	if len(spoofed) == 0 {
		t.Skip("no offset spoofing with this seed")
	}
	checkers := map[uint32]*KinematicChecker{}
	flagged := map[uint32]bool{}
	for _, obs := range run.Positions {
		m := obs.Report.MMSI
		k, ok := checkers[m]
		if !ok {
			k = &KinematicChecker{}
			checkers[m] = k
		}
		st := model.FromReport(obs.At, &obs.Report)
		for _, is := range k.Check(st) {
			if is.Rule == "teleport" {
				flagged[m] = true
			}
		}
	}
	hits := 0
	for m := range spoofed {
		if flagged[m] {
			hits++
		}
	}
	if hits == 0 {
		t.Errorf("teleport rule caught none of %d spoofed vessels", len(spoofed))
	}
}

func BenchmarkCheckStatic(b *testing.B) {
	m := cleanStatic()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = CheckStatic(m)
	}
}

func BenchmarkKinematicCheck(b *testing.B) {
	var k KinematicChecker
	rng := rand.New(rand.NewSource(1))
	states := make([]model.VesselState, 1000)
	pos := geo.Point{Lat: 43, Lon: 5}
	at := t0()
	for i := range states {
		states[i] = model.VesselState{MMSI: 1, At: at, Pos: pos, SpeedKn: 12}
		pos = geo.Destination(pos, 90, 60+rng.Float64()*5)
		at = at.Add(10 * time.Second)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Check(states[i%len(states)])
	}
}
