// Package quality assesses the veracity of AIS data — the paper's fourth V
// (§1): roughly 5% of static-data transmissions carry errors of some kind
// [44], positions jump under spoofing, and per-source reliability must be
// learned rather than assumed. The package provides rule-based static
// checks, kinematic consistency checks on position streams, completeness
// metrics, and Beta-Bernoulli reliability profiles per vessel and source.
package quality

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/uncertainty"
)

// Issue is one detected data-quality problem.
type Issue struct {
	MMSI  uint32
	Field string // which field failed ("mmsi", "name", "dimensions", …)
	Rule  string // which rule fired
	Note  string
}

// Field names reported by the static checks (aligned with the simulator's
// corruption labels so precision/recall is directly scoreable).
const (
	FieldMMSI     = "mmsi"
	FieldName     = "name"
	FieldDims     = "dimensions"
	FieldShipType = "ship_type"
	FieldCallSign = "call_sign"
	FieldPosition = "position"
	FieldSpeed    = "speed"
)

// CheckStatic runs the rule set over one static/voyage message and returns
// every issue found. The rules mirror the USCG vessel-identity
// verification checks [44]: structural MMSI validity, blank or placeholder
// names, implausible dimensions, missing type and call sign.
func CheckStatic(m *ais.StaticVoyage) []Issue {
	var issues []Issue
	add := func(field, rule, note string) {
		issues = append(issues, Issue{MMSI: m.MMSI, Field: field, Rule: rule, Note: note})
	}
	if !ais.ValidMMSI(m.MMSI) {
		add(FieldMMSI, "mmsi-structural", fmt.Sprintf("MMSI %d outside ship-station range", m.MMSI))
	}
	switch {
	case m.ShipName == "":
		add(FieldName, "name-blank", "ship name empty")
	case isPlaceholderName(m.ShipName):
		add(FieldName, "name-placeholder", fmt.Sprintf("placeholder name %q", m.ShipName))
	}
	length := m.Length()
	beam := m.Beam()
	switch {
	case length == 0 || beam == 0:
		add(FieldDims, "dims-missing", "zero dimensions")
	case length > 460 || beam > 70:
		// Nothing afloat exceeds ~458 m (Seawise Giant) / ~69 m beam.
		add(FieldDims, "dims-implausible", fmt.Sprintf("length %d beam %d", length, beam))
	case float64(length)/float64(beam) > 20 || float64(length)/float64(beam) < 1.5:
		add(FieldDims, "dims-ratio", fmt.Sprintf("aspect ratio %d:%d implausible", length, beam))
	}
	if m.ShipType == ais.ShipTypeUnknown {
		add(FieldShipType, "type-unknown", "ship type not set")
	}
	if m.CallSign == "" {
		add(FieldCallSign, "callsign-blank", "call sign empty")
	}
	return issues
}

func isPlaceholderName(name string) bool {
	switch name {
	case "NONAME", "NO NAME", "TEST", "SHIPNAME", "NAME", "UNKNOWN", "XXXX":
		return true
	}
	return false
}

// KinematicChecker validates a vessel's position stream: teleporting
// (implied speed beyond MaxSpeedKn), speed-over-ground wildly inconsistent
// with the displacement, and duplicate timestamps. One instance per
// vessel; feed states in arrival order.
type KinematicChecker struct {
	// MaxSpeedKn is the hard ceiling on implied speed (default 60 kn).
	MaxSpeedKn float64
	// SpeedSlackKn tolerates SOG-vs-displacement disagreement (default 8 kn).
	SpeedSlackKn float64
	// SkipNotes leaves Issue.Note empty. The notes are diagnostics for
	// humans; accumulators that keep only rule counts (the track stage's
	// per-record integrity fold) set this so a defect-heavy feed does not
	// pay float formatting per flagged message.
	SkipNotes bool

	last    model.VesselState
	started bool
}

// Check consumes the next state and returns any issues it raises against
// the previous one.
func (k *KinematicChecker) Check(s model.VesselState) []Issue {
	if k.MaxSpeedKn == 0 {
		k.MaxSpeedKn = 60
	}
	if k.SpeedSlackKn == 0 {
		k.SpeedSlackKn = 8
	}
	if !k.started {
		k.started = true
		k.last = s
		return nil
	}
	note := func(format string, args ...any) string {
		if k.SkipNotes {
			return ""
		}
		return fmt.Sprintf(format, args...)
	}
	var issues []Issue
	dt := s.At.Sub(k.last.At).Seconds()
	if dt <= 0 {
		issues = append(issues, Issue{
			MMSI: s.MMSI, Field: FieldPosition, Rule: "time-regression",
			Note: note("timestamp not increasing (dt=%.1fs)", dt),
		})
		// Do not advance: judge the next message against the same anchor.
		return issues
	}
	dist := geo.Distance(k.last.Pos, s.Pos)
	impliedKn := dist / dt / geo.Knot
	if impliedKn > k.MaxSpeedKn {
		issues = append(issues, Issue{
			MMSI: s.MMSI, Field: FieldPosition, Rule: "teleport",
			Note: note("implied speed %.0f kn over %.0fs", impliedKn, dt),
		})
	}
	// SOG consistency only over short gaps; long gaps legitimately diverge.
	if dt <= 120 && s.SpeedKn < ais.SpeedNotAvailable {
		meanSOG := (s.SpeedKn + k.last.SpeedKn) / 2
		if diff := impliedKn - meanSOG; diff > k.SpeedSlackKn {
			issues = append(issues, Issue{
				MMSI: s.MMSI, Field: FieldSpeed, Rule: "sog-mismatch",
				Note: note("implied %.1f kn vs reported %.1f kn", impliedKn, meanSOG),
			})
		}
	}
	k.last = s
	return issues
}

// --- completeness ------------------------------------------------------------------

// Completeness summarises reporting coverage for one vessel over a window.
type Completeness struct {
	MMSI         uint32
	Window       time.Duration
	Received     int
	Expected     int     // from the nominal reporting cadence
	Ratio        float64 // received/expected, capped at 1
	LongestGap   time.Duration
	GapsOver     int // gaps exceeding the dark threshold
	DarkTime     time.Duration
	DarkFraction float64
}

// MeasureCompleteness scores a sequence of report times in [from, to]
// against a nominal interval; gaps above darkAfter count as dark time.
// This is the measurement behind the "27% of ships dark ≥10% of the time"
// statistic (E4).
func MeasureCompleteness(mmsi uint32, times []time.Time, from, to time.Time, nominal, darkAfter time.Duration) Completeness {
	c := Completeness{MMSI: mmsi, Window: to.Sub(from)}
	if nominal <= 0 || !to.After(from) {
		return c
	}
	c.Expected = int(to.Sub(from) / nominal)
	sorted := append([]time.Time(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Before(sorted[j]) })
	prev := from
	for _, t := range sorted {
		if t.Before(from) || t.After(to) {
			continue
		}
		c.Received++
		gap := t.Sub(prev)
		if gap > c.LongestGap {
			c.LongestGap = gap
		}
		if gap > darkAfter {
			c.GapsOver++
			c.DarkTime += gap - darkAfter
		}
		prev = t
	}
	if tail := to.Sub(prev); tail > darkAfter {
		c.GapsOver++
		c.DarkTime += tail - darkAfter
		if tail > c.LongestGap {
			c.LongestGap = tail
		}
	}
	if c.Expected > 0 {
		c.Ratio = float64(c.Received) / float64(c.Expected)
		if c.Ratio > 1 {
			c.Ratio = 1
		}
	}
	if c.Window > 0 {
		c.DarkFraction = float64(c.DarkTime) / float64(c.Window)
	}
	return c
}

// --- reliability profiles -----------------------------------------------------------

// Profile accumulates a Beta-Bernoulli reliability estimate per subject
// (vessel or source): each checked message is a success (clean) or failure
// (issue found). The second-order Beta model keeps "how sure are we"
// explicit, as §4 requires.
type Profile struct {
	subjects map[string]uncertainty.Beta
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{subjects: make(map[string]uncertainty.Beta)}
}

// Record notes one observation for the subject.
func (p *Profile) Record(subject string, clean bool) {
	b, ok := p.subjects[subject]
	if !ok {
		b = uncertainty.NewBeta()
	}
	if clean {
		b = b.Observe(1, 0)
	} else {
		b = b.Observe(0, 1)
	}
	p.subjects[subject] = b
}

// Reliability returns the mean reliability estimate and the conservative
// 2-sigma lower bound for the subject; unknown subjects get the prior.
func (p *Profile) Reliability(subject string) (mean, lower float64) {
	b, ok := p.subjects[subject]
	if !ok {
		b = uncertainty.NewBeta()
	}
	return b.Mean(), b.LowerBound(2)
}

// Subjects lists the known subjects sorted by name.
func (p *Profile) Subjects() []string {
	out := make([]string, 0, len(p.subjects))
	for s := range p.subjects {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// --- aggregate scoring ----------------------------------------------------------------

// Score aggregates detector output over a static-message batch.
type Score struct {
	Messages      int
	Flagged       int
	EstimatedRate float64
}

// ScoreStatics runs CheckStatic over a batch and estimates the error rate.
func ScoreStatics(msgs []*ais.StaticVoyage) Score {
	s := Score{Messages: len(msgs)}
	for _, m := range msgs {
		if len(CheckStatic(m)) > 0 {
			s.Flagged++
		}
	}
	if s.Messages > 0 {
		s.EstimatedRate = float64(s.Flagged) / float64(s.Messages)
	}
	return s
}
