// Package obs is the unified observability substrate: a dependency-free
// metrics registry (atomic counters, gauges and lock-free bounded-bucket
// latency histograms) plus a lightweight per-request trace carried via
// context.Context (see trace.go).
//
// Hot paths hold *Counter/*Gauge/*Histogram pointers obtained once at
// wiring time and update them with single atomic ops; the registry
// mutex is only taken at registration and scrape time. Func-backed
// metrics (CounterFunc, GaugeFunc) are evaluated at scrape, which lets
// subsystems that already keep atomic counters (stream.Metrics, tier
// stats) surface through the registry without double accounting: the
// registry is a window onto them, not a copy. Re-registering a func
// metric replaces the callback (latest wins), so a restarted engine in
// a test re-points the window instead of leaking a stale closure.
package obs

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use, but counters are normally obtained from a Registry so they
// appear on /metrics.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotonic by contract; callers pass n >= 0.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "summary"
	}
	return "untyped"
}

// metric is one registered series: a family name plus a fixed label set.
type metric struct {
	id     string // fully rendered: name{k="v",...}
	name   string // family name
	kind   kind
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// Registry holds named metrics and renders them for scraping. All
// methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	byID  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*metric)}
}

// get returns the metric for (name, labels), creating it with kind k if
// absent. Registering the same series under a different kind is a
// programming error and panics.
func (r *Registry) get(name string, k kind, labels []string) *metric {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != k {
			panic("obs: " + id + " re-registered as a different kind")
		}
		return m
	}
	m := &metric{id: id, name: name, kind: k}
	switch k {
	case kindCounter:
		m.ctr = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = NewHistogram()
	}
	r.byID[id] = m
	return m
}

// Counter returns the counter for (name, labels), creating it if absent.
// Labels are alternating key/value pairs baked into the series identity.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.get(name, kindCounter, labels).ctr
}

// Gauge returns the gauge for (name, labels), creating it if absent.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.get(name, kindGauge, labels).gauge
}

// Histogram returns the histogram for (name, labels), creating it if
// absent.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.get(name, kindHistogram, labels).hist
}

// CounterFunc registers fn as a counter-typed series evaluated at scrape
// time. Re-registering replaces the callback.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	m := r.get(name, kindCounterFunc, labels)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers fn as a gauge-typed series evaluated at scrape
// time. Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	m := r.get(name, kindGaugeFunc, labels)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Value returns the current value of a scalar series (counter, gauge or
// func metric). The second result is false if the series does not exist
// or is a histogram.
func (r *Registry) Value(name string, labels ...string) (float64, bool) {
	id := metricID(name, labels)
	r.mu.Lock()
	m, ok := r.byID[id]
	var fn func() float64
	var v float64
	if ok {
		switch m.kind {
		case kindCounter:
			v = float64(m.ctr.Value())
		case kindGauge:
			v = float64(m.gauge.Value())
		case kindCounterFunc, kindGaugeFunc:
			fn = m.fn
		default:
			ok = false
		}
	}
	r.mu.Unlock()
	if fn != nil {
		return fn(), ok
	}
	return v, ok
}

// Quantile returns the p-quantile of a histogram series in its native
// unit, or false if the series does not exist or is not a histogram.
func (r *Registry) Quantile(name string, p float64, labels ...string) (int64, bool) {
	id := metricID(name, labels)
	r.mu.Lock()
	m, ok := r.byID[id]
	var h *Histogram
	if ok && m.kind == kindHistogram {
		h = m.hist
	}
	r.mu.Unlock()
	if h == nil {
		return 0, false
	}
	return h.Quantile(p), true
}

// metricID renders the canonical series identity: the family name plus
// the label set in registration order, in Prometheus exposition syntax.
func metricID(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs: " + name)
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels))
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
