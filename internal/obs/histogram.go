package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: HDR-style log-linear. Values 0..15 get an
// exact bucket each; above that, every power of two is split into
// histSub linear sub-buckets, so the relative width of any bucket is
// 1/histSub and the midpoint estimate is within ~1/(2*histSub) ≈ 3.1%
// of any value that fell in it. 36 octaves above 16 cover up to
// 2^40 ≈ 1.1e12, which for nanosecond latencies is ~18 minutes; larger
// values clamp into the last bucket (the tracked max keeps the true
// tail honest).
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histOctaves = 36
	histBuckets = histSub + histOctaves*histSub
)

// Histogram is a lock-free bounded-bucket histogram of int64 samples
// (by convention nanoseconds for series named *_ns). Observe is a
// handful of atomic adds; Quantile and Snapshot walk the buckets
// without locking, so under concurrent writes they are weakly
// consistent — good enough for scraping, never torn.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram. Histograms are normally
// obtained from a Registry so they appear on /metrics.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest sample observed.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns the p-quantile (0 < p <= 1) by nearest rank: the
// value at ceil(p*n) in sorted order, estimated as the midpoint of the
// bucket holding that rank and clamped to the observed max. Returns 0
// for an empty histogram.
func (h *Histogram) Quantile(p float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	mx := h.max.Load()
	if rank >= n {
		// The n-th order statistic is the max, which is tracked
		// exactly — no bucket estimate needed.
		return mx
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			v := bucketMid(i)
			if v > mx {
				v = mx
			}
			return v
		}
	}
	// Concurrent writers can leave count ahead of the bucket walk;
	// the tail of the distribution is the honest answer then.
	return mx
}

// HistSnapshot is a point-in-time summary of a histogram.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// Snapshot returns count, sum, max and the p50/p90/p99 quantiles.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// bucketIndex maps a non-negative sample to its bucket. For v < histSub
// the mapping is the identity; above that the index is
// histSub*e + (v>>e) where e is the octave, which lines the buckets up
// contiguously (v=15 -> 15, v=16 -> 16, v=32 -> 32, v=64 -> 48...).
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	e := bits.Len64(u) - histSubBits - 1
	idx := histSub*e + int(u>>uint(e))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketMid returns the midpoint of bucket idx, the value Quantile
// reports for samples that landed there.
func bucketMid(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	e := idx/histSub - 1
	m := int64(idx - histSub*e)
	lo := m << uint(e)
	return lo + (int64(1)<<uint(e))/2
}
