package obs

import (
	"bytes"
	"context"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramSmallValuesExact: buckets 0..15 are identity-mapped, so
// tiny samples come back exactly.
func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 7 {
		t.Fatalf("p50 of 0..15 = %d, want 7 (nearest rank)", got)
	}
	if got := h.Max(); got != 15 {
		t.Fatalf("max = %d, want 15", got)
	}
	if got := h.Count(); got != 16 {
		t.Fatalf("count = %d, want 16", got)
	}
}

// TestHistogramAccuracy checks the quantile estimate against a sorted
// reference on a heavy-tailed latency-like distribution. The log-linear
// buckets are 1/16 wide, so the midpoint estimate must land within a
// few percent of the exact nearest-rank value.
func TestHistogramAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	const n = 50000
	ref := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		// Log-normal around e^10 ns ≈ 22µs with a wide tail, the
		// shape of real query latencies.
		v := int64(math.Exp(rng.NormFloat64()*1.5 + 10))
		ref = append(ref, v)
		h.Observe(v)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(p * float64(n)))
		want := ref[rank-1]
		got := h.Quantile(p)
		relErr := math.Abs(float64(got-want)) / float64(want)
		if relErr > 0.05 {
			t.Errorf("p%.3f: got %d want %d (rel err %.4f)", p*100, got, want, relErr)
		}
	}
	var sum int64
	for _, v := range ref {
		sum += v
	}
	if h.Sum() != sum {
		t.Errorf("sum = %d, want %d", h.Sum(), sum)
	}
	if h.Max() != ref[n-1] {
		t.Errorf("max = %d, want %d", h.Max(), ref[n-1])
	}
	// The top quantile estimate never exceeds the observed max.
	if h.Quantile(1.0) != ref[n-1] {
		t.Errorf("p100 = %d, want max %d", h.Quantile(1.0), ref[n-1])
	}
}

// TestHistogramHugeAndNegative: out-of-range samples clamp instead of
// corrupting the bucket array.
func TestHistogramHugeAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	h.Observe(1 << 62)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Quantile(0.25) != 0 {
		t.Fatalf("low quantile = %d, want 0", h.Quantile(0.25))
	}
	if h.Quantile(1.0) != 1<<62 {
		t.Fatalf("p100 = %d, want clamp to max", h.Quantile(1.0))
	}
}

// TestRegistryKinds: get-or-create returns the same metric, and a kind
// clash panics.
func TestRegistryKinds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "shard", "0")
	c.Add(3)
	if r.Counter("x_total", "shard", "0") != c {
		t.Fatal("same series returned a different counter")
	}
	if v, ok := r.Value("x_total", "shard", "0"); !ok || v != 3 {
		t.Fatalf("Value = %v,%v want 3,true", v, ok)
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	r.GaugeFunc("f", func() float64 { return 2 }) // latest wins
	if v, _ := r.Value("f"); v != 2 {
		t.Fatalf("re-registered func = %v, want 2", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "shard", "0")
}

// TestWritePrometheusFormat: families get one TYPE line, histograms
// render as summaries with spliced quantile labels.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest_messages_in_total").Add(41)
	r.Gauge("tier_resident_points", "shard", "1").Set(7)
	h := r.Histogram("query_latency_ns", "kind", "nearest")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		"# TYPE ingest_messages_in_total counter\n",
		"ingest_messages_in_total 41\n",
		"# TYPE tier_resident_points gauge\n",
		`tier_resident_points{shard="1"} 7` + "\n",
		"# TYPE query_latency_ns summary\n",
		`query_latency_ns{kind="nearest",quantile="0.5"}`,
		`query_latency_ns_sum{kind="nearest"}`,
		`query_latency_ns_count{kind="nearest"} 100`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n%s", w, out)
		}
	}
}

// TestWriteJSON: scalars are numbers, histograms are objects.
func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(5)
	r.Histogram("b_ns").Observe(1000)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"a_total": 5`) {
		t.Errorf("missing scalar: %s", out)
	}
	if !strings.Contains(out, `"count": 1`) {
		t.Errorf("missing histogram object: %s", out)
	}
}

// TestConcurrentScrape hammers counters and a histogram from writer
// goroutines while a reader scrapes, checking (under -race) that the
// export is well-formed and counter values never go backwards.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("w_total")
	h := r.Histogram("w_ns")
	stop := make(chan struct{})
	var wg, started sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		started.Add(1)
		go func() {
			defer wg.Done()
			c.Inc()
			h.Observe(12345)
			started.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(12345)
				}
			}
		}()
	}
	started.Wait()
	var last float64 = -1
	for i := 0; i < 200; i++ {
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
			if strings.HasPrefix(line, "w_total ") {
				v, err := strconv.ParseFloat(strings.TrimPrefix(line, "w_total "), 64)
				if err != nil {
					t.Fatalf("unparsable counter line %q: %v", line, err)
				}
				if v < last {
					t.Fatalf("counter went backwards: %g -> %g", last, v)
				}
				last = v
			}
		}
	}
	close(stop)
	wg.Wait()
	if last < 1 {
		t.Fatalf("scrapes never saw the counter move (last=%g)", last)
	}
}

// TestScrapeAllocationLight bounds the per-scrape allocation cost: a
// capture slice, one output buffer, and small change — not per-line
// garbage.
func TestScrapeAllocationLight(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter("c_total", "i", strconv.Itoa(i)).Add(int64(i))
	}
	for i := 0; i < 5; i++ {
		h := r.Histogram("h_ns", "i", strconv.Itoa(i))
		h.Observe(int64(i) * 100)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("WritePrometheus allocates %.0f times per scrape for 25 series; want <= 8", allocs)
	}
}

// TestTrace: spans record offsets and durations, nil traces no-op, and
// the context round-trip preserves identity.
func TestTrace(t *testing.T) {
	tr := NewTrace()
	end := tr.StartSpan("stage_a")
	time.Sleep(2 * time.Millisecond)
	end()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "stage_a" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Dur < time.Millisecond {
		t.Fatalf("span duration %v too short", spans[0].Dur)
	}

	var nilTr *Trace
	nilTr.StartSpan("x")() // must not panic
	if nilTr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}

	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context round-trip lost the trace")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a trace")
	}
	if WithTrace(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace should not wrap the context")
	}
}

// TestTraceConcurrentSpans: per-source goroutines append concurrently.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tr.StartSpan("src")()
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8 {
		t.Fatalf("got %d spans, want 8", got)
	}
}

// BenchmarkHistogramObserve is the hot-path cost every instrumented
// layer pays per sample.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkWritePrometheus is the scrape cost for a realistic registry.
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 30; i++ {
		r.Counter("c_total", "i", strconv.Itoa(i)).Add(int64(i))
	}
	for i := 0; i < 10; i++ {
		r.Histogram("h_ns", "i", strconv.Itoa(i)).Observe(int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
