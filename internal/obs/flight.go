package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the black box of the daemon: a fixed-size ring
// of structured events that every layer writes its load-bearing
// transitions into — segment seals and uploads, upload-queue stalls,
// tier evictions and page-back errors, subscriber drops, epoch rewinds,
// peer degradation, flush backpressure. Counters say *how much*; the
// flight ring says *what happened, in what order*, which is the record
// an incident investigation actually needs. It is cheap enough to stay
// on permanently: recording is one atomic add plus one short per-slot
// mutex hold with zero allocations, and a nil *Flight reduces every
// site to a nil check.

// FlightLevel classifies an event's severity.
type FlightLevel int32

const (
	FlightInfo FlightLevel = iota
	FlightWarn
	FlightError
)

// String renders the level the way /debug/flight and dumps spell it.
func (l FlightLevel) String() string {
	switch l {
	case FlightWarn:
		return "warn"
	case FlightError:
		return "error"
	default:
		return "info"
	}
}

// ParseFlightLevel maps the wire spelling back to a level (default
// info, so an empty filter admits everything).
func ParseFlightLevel(s string) FlightLevel {
	switch s {
	case "warn":
		return FlightWarn
	case "error":
		return FlightError
	default:
		return FlightInfo
	}
}

// KV is one small key/value field of a flight event: a string or an
// int64, chosen by the FS/FI constructors. A fixed struct (rather than
// an any) keeps Record allocation-free — the variadic slice stays on
// the caller's stack.
type KV struct {
	K   string
	S   string
	N   int64
	Num bool
}

// FS builds a string field.
func FS(k, v string) KV { return KV{K: k, S: v} }

// FI builds an integer field.
func FI(k string, n int64) KV { return KV{K: k, N: n, Num: true} }

// flightKVs caps the fields one event carries; extra fields are dropped
// (events are telegrams, not log lines).
const flightKVs = 4

// FlightEvent is one recorded transition. Seq orders events totally
// across the ring (it never resets); Mono is the monotonic offset from
// the recorder's start and Wall the matching wall-clock instant.
type FlightEvent struct {
	Seq   uint64
	Wall  time.Time
	Mono  time.Duration
	Level FlightLevel
	Layer string
	Msg   string

	kvs [flightKVs]KV
	nkv int
}

// Fields returns the event's key/value fields.
func (e *FlightEvent) Fields() []KV { return e.kvs[:e.nkv] }

// Flight is the fixed-size, lock-light event ring. Writers claim a slot
// with one atomic add and publish under that slot's mutex; readers
// snapshot slot by slot, so a scrape never stalls more than one writer
// at a time. All methods are nil-safe.
type Flight struct {
	start time.Time // wall+monotonic anchor of Mono offsets
	seq   atomic.Uint64
	slots []flightSlot
	mask  uint64
}

type flightSlot struct {
	mu sync.Mutex
	ev FlightEvent
}

// NewFlight builds a ring of at least size events (rounded up to a
// power of two; default 1024 when size <= 0).
func NewFlight(size int) *Flight {
	if size <= 0 {
		size = 1024
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Flight{start: time.Now(), slots: make([]flightSlot, n), mask: uint64(n - 1)}
}

// Record appends one event, overwriting the ring's oldest. Safe from
// any goroutine and on a nil recorder; zero allocations when the
// variadic fields do not escape (they are copied into the slot).
func (f *Flight) Record(level FlightLevel, layer, msg string, fields ...KV) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1)
	mono := time.Since(f.start)
	slot := &f.slots[seq&f.mask]
	slot.mu.Lock()
	// Latest-wins under a wrap race: if a writer lapped the ring while
	// we held our seq, its newer event keeps the slot.
	if slot.ev.Seq < seq {
		slot.ev.Seq = seq
		slot.ev.Wall = f.start.Add(mono)
		slot.ev.Mono = mono
		slot.ev.Level = level
		slot.ev.Layer = layer
		slot.ev.Msg = msg
		slot.ev.nkv = copy(slot.ev.kvs[:], fields)
	}
	slot.mu.Unlock()
}

// Len returns the number of events recorded so far (not retained —
// the ring keeps the newest cap(slots)). Nil-safe.
func (f *Flight) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// FlightFilter selects events for Events/WriteJSON: empty fields admit
// everything.
type FlightFilter struct {
	Layer    string      // exact layer match when non-empty
	MinLevel FlightLevel // admit events at or above this level
	Since    time.Time   // admit events with Wall at or after this instant
}

func (flt FlightFilter) admits(ev *FlightEvent) bool {
	if ev.Level < flt.MinLevel {
		return false
	}
	if flt.Layer != "" && ev.Layer != flt.Layer {
		return false
	}
	if !flt.Since.IsZero() && ev.Wall.Before(flt.Since) {
		return false
	}
	return true
}

// Events snapshots the retained events matching flt, oldest first.
// Nil-safe.
func (f *Flight) Events(flt FlightFilter) []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		if ev.Seq == 0 || !flt.admits(&ev) {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// flightJSON is the wire shape of one event on /debug/flight.
type flightJSON struct {
	Seq    uint64         `json:"seq"`
	Wall   time.Time      `json:"wall"`
	MonoNS int64          `json:"mono_ns"`
	Level  string         `json:"level"`
	Layer  string         `json:"layer"`
	Msg    string         `json:"msg"`
	Fields map[string]any `json:"fields,omitempty"`
}

// WriteJSON renders the matching events as a JSON array, oldest first.
func (f *Flight) WriteJSON(w io.Writer, flt FlightFilter) error {
	events := f.Events(flt)
	doc := make([]flightJSON, len(events))
	for i := range events {
		ev := &events[i]
		j := flightJSON{
			Seq: ev.Seq, Wall: ev.Wall, MonoNS: int64(ev.Mono),
			Level: ev.Level.String(), Layer: ev.Layer, Msg: ev.Msg,
		}
		if ev.nkv > 0 {
			j.Fields = make(map[string]any, ev.nkv)
			for _, kv := range ev.Fields() {
				if kv.Num {
					j.Fields[kv.K] = kv.N
				} else {
					j.Fields[kv.K] = kv.S
				}
			}
		}
		doc[i] = j
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Dump writes the retained events as human-readable lines, oldest
// first — the SIGQUIT / daemon-exit rendering. Nil-safe (writes
// nothing).
func (f *Flight) Dump(w io.Writer) {
	for _, ev := range f.Events(FlightFilter{}) {
		fmt.Fprintf(w, "[flight] %s +%-12v %-5s %-7s %s",
			ev.Wall.UTC().Format(time.RFC3339Nano),
			ev.Mono.Round(time.Microsecond), ev.Level, ev.Layer, ev.Msg)
		for _, kv := range ev.Fields() {
			if kv.Num {
				fmt.Fprintf(w, " %s=%d", kv.K, kv.N)
			} else {
				fmt.Fprintf(w, " %s=%s", kv.K, kv.S)
			}
		}
		fmt.Fprintln(w)
	}
}
