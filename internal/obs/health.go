package obs

import (
	"sync"
	"time"
)

// The health surface turns per-layer conditions into the two verdicts a
// load balancer (or the ROADMAP's future cluster map) can act on:
// alive, and ready to serve. Liveness is the process answering at all;
// readiness aggregates registered checks — critical ones gate the
// verdict, informational ones ride along as detail.

// HealthCheck is one registered readiness probe. Check must be safe for
// concurrent use and fast (it runs on every /readyz scrape); Critical
// checks gate the ready verdict, non-critical ones only annotate it.
type HealthCheck struct {
	Name     string
	Critical bool
	Check    func() (ok bool, detail string)
}

// Health aggregates readiness checks into a machine-readable verdict.
// The zero value is unusable; NewHealth returns an empty, ready
// surface. Nil-safe: a nil *Health evaluates to ready with no checks.
type Health struct {
	mu     sync.Mutex
	checks []HealthCheck
}

// NewHealth returns an empty health surface (ready until a critical
// check fails).
func NewHealth() *Health { return &Health{} }

// Register adds a check. Safe on a live surface.
func (h *Health) Register(c HealthCheck) {
	h.mu.Lock()
	h.checks = append(h.checks, c)
	h.mu.Unlock()
}

// CheckResult is one check's outcome within a verdict.
type CheckResult struct {
	Name     string `json:"name"`
	OK       bool   `json:"ok"`
	Critical bool   `json:"critical"`
	Detail   string `json:"detail,omitempty"`
}

// HealthVerdict is the /readyz payload: the aggregate verdict plus
// per-check detail, in registration order.
type HealthVerdict struct {
	Ready  bool          `json:"ready"`
	At     time.Time     `json:"at"`
	Checks []CheckResult `json:"checks"`
}

// Evaluate runs every check (outside the registration lock — checks may
// take their own locks) and aggregates: ready iff every critical check
// passes.
func (h *Health) Evaluate() HealthVerdict {
	v := HealthVerdict{Ready: true, At: time.Now().UTC()}
	if h == nil {
		return v
	}
	h.mu.Lock()
	checks := make([]HealthCheck, len(h.checks))
	copy(checks, h.checks)
	h.mu.Unlock()
	for _, c := range checks {
		ok, detail := c.Check()
		v.Checks = append(v.Checks, CheckResult{Name: c.Name, OK: ok, Critical: c.Critical, Detail: detail})
		if !ok && c.Critical {
			v.Ready = false
		}
	}
	return v
}
