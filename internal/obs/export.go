package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// sample is one series captured at scrape time. Scalars land in val;
// histograms land in hist. Capturing under the registry lock and
// formatting outside it keeps IO out of the critical section and the
// scrape consistent-enough: every value is from the same pass.
type sample struct {
	id   string
	name string
	kind kind
	val  float64
	hist HistSnapshot
}

// capture snapshots every series. Func metrics are evaluated here, on
// the scraping goroutine.
func (r *Registry) capture() []sample {
	r.mu.Lock()
	out := make([]sample, 0, len(r.byID))
	for _, m := range r.byID {
		s := sample{id: m.id, name: m.name, kind: m.kind}
		switch m.kind {
		case kindCounter:
			s.val = float64(m.ctr.Value())
		case kindGauge:
			s.val = float64(m.gauge.Value())
		case kindCounterFunc, kindGaugeFunc:
			s.val = m.fn()
		case kindHistogram:
			s.hist = m.hist.Snapshot()
		}
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// WritePrometheus renders every series in the Prometheus text
// exposition format (version 0.0.4). Histograms are rendered as
// summaries: {quantile="0.5"|"0.9"|"0.99"}, _sum and _count. The whole
// page is built in one buffer and written once.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.capture()
	buf := make([]byte, 0, 64+96*len(samples))
	lastFamily := ""
	for _, s := range samples {
		if s.name != lastFamily {
			buf = append(buf, "# TYPE "...)
			buf = append(buf, s.name...)
			buf = append(buf, ' ')
			buf = append(buf, s.kind.String()...)
			buf = append(buf, '\n')
			lastFamily = s.name
		}
		if s.kind == kindHistogram {
			buf = appendQuantileLine(buf, s.id, "0.5", s.hist.P50)
			buf = appendQuantileLine(buf, s.id, "0.9", s.hist.P90)
			buf = appendQuantileLine(buf, s.id, "0.99", s.hist.P99)
			buf = appendSuffixed(buf, s.id, "_sum", s.hist.Sum)
			buf = appendSuffixed(buf, s.id, "_count", s.hist.Count)
			continue
		}
		buf = append(buf, s.id...)
		buf = append(buf, ' ')
		buf = appendValue(buf, s.val)
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}

// appendQuantileLine emits id{quantile="q"} v, splicing the quantile
// label into an id that may already carry labels.
func appendQuantileLine(buf []byte, id, q string, v int64) []byte {
	name, labels := splitID(id)
	buf = append(buf, name...)
	buf = append(buf, '{')
	if labels != "" {
		buf = append(buf, labels...)
		buf = append(buf, ',')
	}
	buf = append(buf, `quantile="`...)
	buf = append(buf, q...)
	buf = append(buf, `"} `...)
	buf = strconv.AppendInt(buf, v, 10)
	return append(buf, '\n')
}

// appendSuffixed emits name<suffix>{labels} v for _sum/_count lines.
func appendSuffixed(buf []byte, id, suffix string, v int64) []byte {
	name, labels := splitID(id)
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, v, 10)
	return append(buf, '\n')
}

// splitID separates a rendered series id into family name and the bare
// label list (no braces).
func splitID(id string) (name, labels string) {
	for i := 0; i < len(id); i++ {
		if id[i] == '{' {
			return id[:i], id[i+1 : len(id)-1]
		}
	}
	return id, ""
}

// appendValue renders a scalar in shortest form; 'g' prints integral
// floats without a fraction, so counters read as plain integers.
func appendValue(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// WriteJSON renders a /debug/vars-style snapshot: one key per series,
// scalars as numbers, histograms as {count,sum,max,p50,p90,p99}
// objects. Keys sort lexically (encoding/json orders map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.capture()
	doc := make(map[string]any, len(samples))
	for _, s := range samples {
		if s.kind == kindHistogram {
			doc[s.id] = s.hist
			continue
		}
		doc[s.id] = s.val
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
