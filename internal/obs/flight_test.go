package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightWrapAround: a full ring keeps exactly the newest cap events,
// in total seq order, with the oldest overwritten.
func TestFlightWrapAround(t *testing.T) {
	f := NewFlight(8)
	for i := 1; i <= 20; i++ {
		f.Record(FlightInfo, "store", "seal", FI("seq", int64(i)))
	}
	evs := f.Events(FlightFilter{})
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(evs))
	}
	for i, ev := range evs {
		want := uint64(13 + i) // newest 8 of 20 are seqs 13..20
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
		fs := ev.Fields()
		if len(fs) != 1 || fs[0].N != int64(want) {
			t.Fatalf("event %d fields = %+v, want seq field %d", i, fs, want)
		}
	}
	if f.Len() != 20 {
		t.Fatalf("Len = %d, want 20 recorded", f.Len())
	}
}

// TestFlightSizing: sizes round up to a power of two and <=0 defaults.
func TestFlightSizing(t *testing.T) {
	if n := len(NewFlight(100).slots); n != 128 {
		t.Fatalf("NewFlight(100) ring = %d slots, want 128", n)
	}
	if n := len(NewFlight(0).slots); n != 1024 {
		t.Fatalf("NewFlight(0) ring = %d slots, want default 1024", n)
	}
}

// TestFlightNilSafe: every method on a nil recorder is a no-op — that is
// the contract that lets call sites stay unconditional.
func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(FlightError, "tier", "page-back failed", FS("key", "x"))
	if f.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
	if evs := f.Events(FlightFilter{}); evs != nil {
		t.Fatalf("nil Events = %v, want nil", evs)
	}
	var b bytes.Buffer
	f.Dump(&b)
	if b.Len() != 0 {
		t.Fatalf("nil Dump wrote %q", b.String())
	}
}

// TestFlightFilter: layer, min-level and since each narrow the snapshot.
func TestFlightFilter(t *testing.T) {
	f := NewFlight(32)
	f.Record(FlightInfo, "store", "seal")
	f.Record(FlightWarn, "hub", "drop")
	f.Record(FlightError, "tier", "page-back failed")
	cut := time.Now()
	f.Record(FlightWarn, "store", "upload stalled")

	if evs := f.Events(FlightFilter{Layer: "store"}); len(evs) != 2 {
		t.Fatalf("layer filter kept %d, want 2", len(evs))
	}
	evs := f.Events(FlightFilter{MinLevel: FlightWarn})
	if len(evs) != 3 {
		t.Fatalf("level filter kept %d, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.Level < FlightWarn {
			t.Fatalf("level filter admitted %v", ev.Level)
		}
	}
	if evs := f.Events(FlightFilter{Since: cut}); len(evs) != 1 || evs[0].Msg != "upload stalled" {
		t.Fatalf("since filter = %+v, want only the post-cut event", evs)
	}
}

// TestFlightExtraFieldsDropped: events carry at most flightKVs fields;
// the overflow is dropped rather than allocated for.
func TestFlightExtraFieldsDropped(t *testing.T) {
	f := NewFlight(8)
	f.Record(FlightInfo, "query", "slow",
		FI("a", 1), FI("b", 2), FI("c", 3), FI("d", 4), FI("e", 5))
	evs := f.Events(FlightFilter{})
	if len(evs) != 1 || len(evs[0].Fields()) != flightKVs {
		t.Fatalf("fields = %+v, want exactly %d", evs[0].Fields(), flightKVs)
	}
}

// TestFlightWriteJSON: the /debug/flight wire shape — seq, level
// spelling, and typed fields.
func TestFlightWriteJSON(t *testing.T) {
	f := NewFlight(8)
	f.Record(FlightWarn, "store", "upload queue stalled",
		FI("depth", 3), FS("head", "seg-7"))
	var b bytes.Buffer
	if err := f.WriteJSON(&b, FlightFilter{}); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Seq    uint64         `json:"seq"`
		Level  string         `json:"level"`
		Layer  string         `json:"layer"`
		Msg    string         `json:"msg"`
		Fields map[string]any `json:"fields"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, b.String())
	}
	if len(doc) != 1 {
		t.Fatalf("got %d events, want 1", len(doc))
	}
	ev := doc[0]
	if ev.Seq != 1 || ev.Level != "warn" || ev.Layer != "store" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Fields["depth"] != float64(3) || ev.Fields["head"] != "seg-7" {
		t.Fatalf("fields = %+v", ev.Fields)
	}
}

// TestFlightDump: the SIGQUIT rendering is one line per event with k=v
// fields.
func TestFlightDump(t *testing.T) {
	f := NewFlight(8)
	f.Record(FlightError, "tier", "page-back failed", FS("key", "k1"), FI("try", 2))
	var b bytes.Buffer
	f.Dump(&b)
	line := b.String()
	for _, w := range []string{"[flight]", "error", "tier", "page-back failed", "key=k1", "try=2"} {
		if !strings.Contains(line, w) {
			t.Fatalf("dump missing %q:\n%s", w, line)
		}
	}
}

// TestFlightConcurrent hammers the ring from writer goroutines while
// readers scrape, under -race: every snapshot must be seq-sorted with no
// torn events (a slot's seq must match its payload field).
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(layer string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					f.Record(FlightInfo, layer, "tick", FI("i", int64(i)))
				}
			}
		}(fmt.Sprintf("w%d", w))
	}
	for i := 0; i < 200; i++ {
		evs := f.Events(FlightFilter{})
		for j := 1; j < len(evs); j++ {
			if evs[j-1].Seq >= evs[j].Seq {
				t.Fatalf("snapshot out of order: seq %d then %d", evs[j-1].Seq, evs[j].Seq)
			}
		}
		for _, ev := range evs {
			if len(ev.Fields()) != 1 || ev.Fields()[0].K != "i" {
				t.Fatalf("torn event: %+v", ev)
			}
		}
		if err := f.WriteJSON(&bytes.Buffer{}, FlightFilter{MinLevel: FlightWarn}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestFlightRecordZeroAlloc pins the always-on contract: a Record with
// fixed KV fields allocates nothing, so every layer can emit
// unconditionally.
func TestFlightRecordZeroAlloc(t *testing.T) {
	f := NewFlight(128)
	allocs := testing.AllocsPerRun(100, func() {
		f.Record(FlightInfo, "store", "segment sealed", FI("seq", 7), FI("bytes", 1<<20))
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call; want 0", allocs)
	}
}

// TestTraceSpansSorted pins the deterministic trace contract: Spans
// returns (Start, Name) order regardless of completion or Add order, so
// federated traces render byte-stable.
func TestTraceSpansSorted(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Name: "zeta", Start: 5 * time.Millisecond})
	tr.Add(Span{Name: "beta", Start: 2 * time.Millisecond})
	tr.Add(Span{Name: "alpha", Start: 2 * time.Millisecond})
	tr.Add(Span{Name: "root", Start: 0})
	got := tr.Spans()
	want := []string{"root", "alpha", "beta", "zeta"}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("span order = %v, want %v", names(got), want)
		}
	}
}

func names(spans []Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestTraceAddOffset: grafted spans survive with Parent intact, and
// Offset is monotone (it anchors rebased peer spans).
func TestTraceAddOffset(t *testing.T) {
	tr := NewTrace()
	tr.Add(Span{Name: "peer/x/scan", Parent: "peer/x", Start: time.Millisecond, Dur: time.Millisecond})
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Parent != "peer/x" {
		t.Fatalf("spans = %+v", spans)
	}
	if tr.Offset() < 0 {
		t.Fatal("negative offset")
	}
	var nilTr *Trace
	nilTr.Add(Span{Name: "x"})
	if nilTr.Offset() != 0 {
		t.Fatal("nil Offset != 0")
	}
}

// TestHealthEvaluate: critical failures flip the verdict; informational
// ones only annotate it.
func TestHealthEvaluate(t *testing.T) {
	h := NewHealth()
	ok := true
	h.Register(HealthCheck{Name: "flush-backlog", Critical: true,
		Check: func() (bool, string) { return ok, "depth=0" }})
	h.Register(HealthCheck{Name: "peer:a",
		Check: func() (bool, string) { return false, "unreachable" }})

	v := h.Evaluate()
	if !v.Ready {
		t.Fatalf("informational failure flipped readiness: %+v", v)
	}
	if len(v.Checks) != 2 || v.Checks[0].Name != "flush-backlog" || v.Checks[1].OK {
		t.Fatalf("checks = %+v", v.Checks)
	}

	ok = false
	if v := h.Evaluate(); v.Ready {
		t.Fatalf("critical failure did not flip readiness: %+v", v)
	}
	ok = true
	if v := h.Evaluate(); !v.Ready {
		t.Fatalf("readiness did not recover: %+v", v)
	}

	var nilH *Health
	if v := nilH.Evaluate(); !v.Ready || len(v.Checks) != 0 {
		t.Fatalf("nil health = %+v, want ready/no checks", v)
	}
}

// TestBuildInfo: the metrics land in the registry and the revision is
// never empty (unknown at worst).
func TestBuildInfo(t *testing.T) {
	rev, gover := BuildInfo()
	if rev == "" || gover == "" {
		t.Fatalf("BuildInfo = %q, %q; want non-empty", rev, gover)
	}
	r := NewRegistry()
	start := time.Now().Add(-3 * time.Second)
	RegisterBuildInfo(r, start)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "maritime_build_info{") {
		t.Fatalf("missing build info metric:\n%s", out)
	}
	if !strings.Contains(out, "maritime_uptime_seconds") {
		t.Fatalf("missing uptime gauge:\n%s", out)
	}
	if v, okv := r.Value("maritime_uptime_seconds"); !okv || v < 2.5 {
		t.Fatalf("uptime = %v,%v; want >= 2.5s", v, okv)
	}
}

// BenchmarkFlightRecord is the always-on emit cost every layer pays at a
// load-bearing transition.
func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(FlightInfo, "store", "segment sealed", FI("seq", int64(i)), FI("bytes", 1<<20))
	}
}
