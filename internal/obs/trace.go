package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one named stage of a traced request: its offset from the
// start of the trace and how long it ran.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Trace collects named stage spans for a single request. It rides in a
// context.Context (WithTrace/FromContext) so layers that never see each
// other — HTTP handler, query engine, per-source goroutines — append to
// the same record. A nil *Trace is valid and records nothing, which is
// how untraced requests pay only a nil check.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTrace starts an empty trace anchored at now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// StartSpan begins a span and returns the func that ends it. Safe on a
// nil trace and from concurrent goroutines:
//
//	defer tr.StartSpan("merge")()
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: t0.Sub(t.start), Dur: d})
		t.mu.Unlock()
	}
}

// Spans returns a copy of the spans recorded so far, in completion
// order. Nil-safe.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

type traceKey struct{}

// WithTrace returns a context carrying t. A nil trace returns ctx
// unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
