package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Span is one named stage of a traced request: its offset from the
// start of the trace and how long it ran. Parent names the span this
// one nests under ("" = a root stage) — the federation hop uses it to
// stitch a peer's spans under its peer/<addr> span, so one trace renders
// as a tree spanning daemons.
type Span struct {
	Name   string
	Parent string
	Start  time.Duration
	Dur    time.Duration
}

// Trace collects named stage spans for a single request. It rides in a
// context.Context (WithTrace/FromContext) so layers that never see each
// other — HTTP handler, query engine, per-source goroutines — append to
// the same record. A nil *Trace is valid and records nothing, which is
// how untraced requests pay only a nil check.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTrace starts an empty trace anchored at now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// StartSpan begins a span and returns the func that ends it. Safe on a
// nil trace and from concurrent goroutines:
//
//	defer tr.StartSpan("merge")()
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: t0.Sub(t.start), Dur: d})
		t.mu.Unlock()
	}
}

// Add grafts an externally built span — e.g. one a federation peer
// returned over the wire — into the trace as recorded. Nil-safe.
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Offset returns the elapsed time since the trace was anchored — the
// Start a span beginning "now" should carry. Nil-safe.
func (t *Trace) Offset() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Spans returns a copy of the spans recorded so far, sorted by
// (Start, Name) so concurrently completed spans render and compare
// deterministically (completion order flaps under the per-source
// fan-out). Nil-safe.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	return out
}

type traceKey struct{}

// WithTrace returns a context carrying t. A nil trace returns ctx
// unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
