package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo returns the binary's VCS revision (short hash, "+dirty"
// when the tree was modified, "unknown" outside a VCS build) and the Go
// toolchain version — the two facts an incident report needs to tie
// evidence to a build.
func BuildInfo() (revision, goVersion string) {
	revision, goVersion = "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return revision, goVersion
	}
	var modified bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	if modified {
		revision += "+dirty"
	}
	return revision, goVersion
}

// RegisterBuildInfo exports the build identity and process uptime on
// reg: maritime_build_info{revision,go} is the constant-1 info-series
// idiom (the labels are the payload), maritime_uptime_seconds counts
// from start. Returns the identity so callers can log it.
func RegisterBuildInfo(reg *Registry, start time.Time) (revision, goVersion string) {
	revision, goVersion = BuildInfo()
	reg.GaugeFunc("maritime_build_info", func() float64 { return 1 },
		"revision", revision, "go", goVersion)
	reg.GaugeFunc("maritime_uptime_seconds", func() float64 {
		return time.Since(start).Seconds()
	})
	return revision, goVersion
}
