// Top-level benchmarks: one per experiment in DESIGN.md's index. Each
// bench regenerates the corresponding table/figure of the reproduction
// (cmd/benchrunner prints the same rows for EXPERIMENTS.md); b.N drives
// repetition so `go test -bench=.` also measures the harness cost itself.
package maritime

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

func BenchmarkE1_GlobalFeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E1(42, 200, 15*time.Minute)
	}
}

func BenchmarkE2_Synopses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E2(42)
	}
}

func BenchmarkE3_Veracity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E3(42)
	}
}

func BenchmarkE4_OpenWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E4(42)
	}
}

func BenchmarkE5_Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E5(42, []int{1, 4})
	}
}

func BenchmarkE6_Fusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E6(42)
	}
}

func BenchmarkE7_Enrichment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E7(42)
	}
}

func BenchmarkE8_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E8(42)
	}
}

func BenchmarkE9_Forecast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E9(42)
	}
}

func BenchmarkE10_Uncertainty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E10(42)
	}
}

func BenchmarkE11_Queries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E11(42, 50000)
	}
}

func BenchmarkE12_Linking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E12(42, 500)
	}
}

func BenchmarkE13_VA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E13(42)
	}
}
