// Top-level benchmarks: one per experiment in DESIGN.md's index. Each
// bench regenerates the corresponding table/figure of the reproduction
// (cmd/benchrunner prints the same rows for EXPERIMENTS.md); b.N drives
// repetition so `go test -bench=.` also measures the harness cost itself.
package maritime

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

func BenchmarkE1_GlobalFeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E1(42, 200, 15*time.Minute)
	}
}

func BenchmarkE2_Synopses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E2(42)
	}
}

func BenchmarkE3_Veracity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E3(42)
	}
}

func BenchmarkE4_OpenWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E4(42)
	}
}

func BenchmarkE5_Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E5(42, []int{1, 4})
	}
}

func BenchmarkE6_Fusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E6(42)
	}
}

func BenchmarkE7_Enrichment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E7(42)
	}
}

func BenchmarkE8_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E8(42)
	}
}

func BenchmarkE9_Forecast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E9(42)
	}
}

func BenchmarkE10_Uncertainty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E10(42)
	}
}

func BenchmarkE11_Queries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E11(42, 50000)
	}
}

func BenchmarkE12_Linking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E12(42, 500)
	}
}

func BenchmarkE13_VA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E13(42)
	}
}

func BenchmarkE15_Persistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E15(42)
	}
}

// --- sharded ingest scaling (E14's benchmark form) ---------------------------------
//
// BenchmarkIngestSharded{1,2,4,8} replay the same dense synthetic feed
// through the async ingest engine at increasing shard counts, so
// `go test -bench=BenchmarkIngestSharded` measures the scaling curve
// directly (ns/op is one full feed; the msg/s metric is derived). The
// traffic is dense on purpose: pairwise-detection cost follows local
// vessel density, and partitioning the fleet divides the density each
// shard sees — the speedup source even on a single core.

var (
	ingestBenchOnce sync.Once
	ingestBenchRun  *SimRun
)

func ingestBenchTraffic(b *testing.B) *SimRun {
	b.Helper()
	ingestBenchOnce.Do(func() {
		cfg := SimConfig{Seed: 42, NumVessels: 2500, Duration: 20 * time.Minute, TickSec: 2}
		cfg.DefaultAnomalyRates()
		run, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ingestBenchRun = run
	})
	return ingestBenchRun
}

func benchmarkIngestSharded(b *testing.B, shards int) {
	run := ingestBenchTraffic(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewIngestEngine(IngestConfig{
			Pipeline: PipelineConfig{Zones: run.Config.World.Zones, SynopsisToleranceM: 60},
			Shards:   shards,
		})
		e.Start(ctx)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range e.Alerts() {
			}
		}()
		for j := range run.Positions {
			o := &run.Positions[j]
			e.Ingest(ctx, o.At, &o.Report)
		}
		e.Close()
		<-drained
	}
	b.ReportMetric(float64(len(run.Positions))*float64(b.N)/b.Elapsed().Seconds(), "msg/s")
}

func BenchmarkIngestSharded1(b *testing.B) { benchmarkIngestSharded(b, 1) }
func BenchmarkIngestSharded2(b *testing.B) { benchmarkIngestSharded(b, 2) }
func BenchmarkIngestSharded4(b *testing.B) { benchmarkIngestSharded(b, 4) }
func BenchmarkIngestSharded8(b *testing.B) { benchmarkIngestSharded(b, 8) }
